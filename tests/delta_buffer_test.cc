#include <gtest/gtest.h>

#include "core/delta_buffer.h"
#include "core/flood_index.h"
#include "query/executor.h"
#include "query/visitor.h"
#include "tests/test_util.h"

namespace flood {
namespace {

TEST(DeltaBufferTest, InsertAndScan) {
  DeltaBuffer buffer(2);
  ASSERT_TRUE(buffer.Insert({10, 100}).ok());
  ASSERT_TRUE(buffer.Insert({20, 200}).ok());
  ASSERT_TRUE(buffer.Insert({30, 300}).ok());
  EXPECT_EQ(buffer.size(), 3u);
  EXPECT_EQ(buffer.Get(1, 0), 20);
  EXPECT_EQ(buffer.Get(2, 1), 300);

  Query q = QueryBuilder(2).Range(0, 15, 35).Build();
  CollectVisitor v;
  QueryStats stats;
  buffer.Scan(q, v, /*base_row_id=*/1000, &stats);
  ASSERT_EQ(v.rows().size(), 2u);
  EXPECT_EQ(v.rows()[0], 1001u);
  EXPECT_EQ(v.rows()[1], 1002u);
  EXPECT_EQ(stats.points_scanned, 3u);
  EXPECT_EQ(stats.points_matched, 2u);
}

TEST(DeltaBufferTest, RejectsArityMismatch) {
  DeltaBuffer buffer(3);
  EXPECT_FALSE(buffer.Insert({1, 2}).ok());
}

TEST(DeltaBufferTest, MergeIntoProducesCombinedTable) {
  StatusOr<Table> main = Table::FromColumns({{1, 2}, {10, 20}});
  ASSERT_TRUE(main.ok());
  DeltaBuffer buffer(2);
  ASSERT_TRUE(buffer.Insert({3, 30}).ok());
  StatusOr<Table> merged = buffer.MergeInto(*main);
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged->num_rows(), 3u);
  EXPECT_EQ(merged->Get(2, 0), 3);
  EXPECT_EQ(merged->Get(2, 1), 30);
  EXPECT_EQ(buffer.size(), 0u);  // Cleared after merge.
}

TEST(DeltaBufferTest, EraseMatchingRemovesFullTupleEqualRows) {
  DeltaBuffer buffer(2);
  ASSERT_TRUE(buffer.Insert({1, 10}).ok());
  ASSERT_TRUE(buffer.Insert({2, 20}).ok());
  ASSERT_TRUE(buffer.Insert({1, 10}).ok());
  ASSERT_TRUE(buffer.Insert({1, 99}).ok());  // Same key dim, other value.
  EXPECT_EQ(buffer.EraseMatching({1, 10}), 2u);
  EXPECT_EQ(buffer.size(), 2u);
  EXPECT_EQ(buffer.Get(0, 0), 2);
  EXPECT_EQ(buffer.Get(1, 1), 99);  // Survivors keep their order.
  EXPECT_EQ(buffer.EraseMatching({7, 7}), 0u);
  EXPECT_EQ(buffer.EraseMatching({1, 10, 3}), 0u);  // Arity mismatch.
}

TEST(DeltaBufferTest, TombstonesRefuseDuplicates) {
  DeltaBuffer buffer(2);
  EXPECT_TRUE(buffer.AddTombstone(7));
  EXPECT_FALSE(buffer.AddTombstone(7));
  EXPECT_TRUE(buffer.AddTombstone(3));
  EXPECT_TRUE(buffer.IsTombstoned(7));
  EXPECT_FALSE(buffer.IsTombstoned(8));
  EXPECT_EQ(buffer.num_tombstones(), 2u);
  EXPECT_EQ(buffer.pending(), 2u);
  ASSERT_TRUE(buffer.Insert({1, 2}).ok());
  EXPECT_EQ(buffer.pending(), 3u);
}

TEST(DeltaBufferTest, MaterializeDropsTombstonesAndKeepsBuffer) {
  StatusOr<Table> main = Table::FromColumns({{1, 2, 3, 4}, {10, 20, 30, 40}});
  ASSERT_TRUE(main.ok());
  DeltaBuffer buffer(2);
  ASSERT_TRUE(buffer.Insert({5, 50}).ok());
  ASSERT_TRUE(buffer.AddTombstone(1));  // Drops row (2, 20).
  StatusOr<Table> merged = buffer.Materialize(*main);
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged->num_rows(), 4u);  // 4 base - 1 tombstone + 1 insert.
  EXPECT_EQ(merged->Get(0, 0), 1);
  EXPECT_EQ(merged->Get(1, 0), 3);  // Row 1 was tombstoned away.
  EXPECT_EQ(merged->Get(3, 0), 5);
  EXPECT_EQ(merged->Get(3, 1), 50);
  // Materialize is non-destructive: a failed rebuild loses no writes.
  EXPECT_EQ(buffer.size(), 1u);
  EXPECT_EQ(buffer.num_tombstones(), 1u);

  // A tombstone past the base table is rejected.
  ASSERT_TRUE(buffer.AddTombstone(99));
  EXPECT_FALSE(buffer.Materialize(*main).ok());
}

TEST(DeltaBufferTest, ScanAccountsDeltaRowsScanned) {
  DeltaBuffer buffer(1);
  ASSERT_TRUE(buffer.Insert({5}).ok());
  ASSERT_TRUE(buffer.Insert({15}).ok());
  Query q = QueryBuilder(1).Range(0, 0, 10).Build();
  CountVisitor v;
  QueryStats stats;
  buffer.Scan(q, v, 0, &stats);
  EXPECT_EQ(v.count(), 1u);
  EXPECT_EQ(stats.delta_rows_scanned, 2u);
  EXPECT_EQ(stats.points_scanned, 2u);
  EXPECT_EQ(stats.points_matched, 1u);
}

TEST(DeltaBufferTest, InsertsVisibleThroughCombinedQueryPath) {
  // End-to-end §8 pattern: main FloodIndex + buffer, then merge + rebuild.
  const Table t = testing::MakeTable(testing::DataShape::kUniform, 2000, 2,
                                     77);
  FloodIndex::Options o;
  o.layout = GridLayout::Default(2, 16);
  FloodIndex index(o);
  BuildContext ctx;
  ctx.sample = DataSample::FromTable(t, 500, 1);
  ASSERT_TRUE(index.Build(t, ctx).ok());

  DeltaBuffer buffer(2);
  for (Value v = 0; v < 50; ++v) {
    ASSERT_TRUE(buffer.Insert({500'000, v}).ok());
  }

  Query q = QueryBuilder(2).Range(0, 499'999, 500'001).Build();
  // Combined result = index result + buffer scan.
  CountVisitor main_count;
  index.Execute(q, main_count, nullptr);
  CountVisitor buffer_count;
  buffer.Scan(q, buffer_count, t.num_rows(), nullptr);
  const uint64_t combined = main_count.count() + buffer_count.count();

  // After merging and rebuilding, the single index agrees.
  StatusOr<Table> merged = buffer.MergeInto(t);
  ASSERT_TRUE(merged.ok());
  FloodIndex rebuilt(o);
  BuildContext ctx2;
  ctx2.sample = DataSample::FromTable(*merged, 500, 2);
  ASSERT_TRUE(rebuilt.Build(*merged, ctx2).ok());
  EXPECT_EQ(ExecuteAggregate(rebuilt, q, nullptr).count, combined);
  EXPECT_GE(combined, 50u);
}

}  // namespace
}  // namespace flood
