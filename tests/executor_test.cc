#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "api/index_registry.h"
#include "common/thread_pool.h"
#include "core/flood_index.h"
#include "query/executor.h"
#include "tests/test_util.h"

namespace flood {
namespace {

std::unique_ptr<MultiDimIndex> MakeFullScan() {
  StatusOr<std::unique_ptr<MultiDimIndex>> index =
      IndexRegistry::Global().Create("full_scan");
  EXPECT_TRUE(index.ok());
  return std::move(*index);
}

TEST(ExecutorTest, CountQuery) {
  const Table t = testing::MakeTable(testing::DataShape::kUniform, 1000, 2,
                                     3);
  std::unique_ptr<MultiDimIndex> index = MakeFullScan();
  BuildContext ctx;
  ctx.sample = DataSample::FromTable(t, 100, 1);
  ASSERT_TRUE(index->Build(t, ctx).ok());
  Query q = QueryBuilder(2).Range(0, 0, 500'000).Count().Build();
  const AggResult r = ExecuteAggregate(*index, q, nullptr);
  EXPECT_EQ(r.count, testing::BruteForce(t, q, 0).count);
}

TEST(ExecutorTest, SumQueryWithAndWithoutPrefixSums) {
  const Table t = testing::MakeTable(testing::DataShape::kUniform, 5000, 3,
                                     4);
  Query q = QueryBuilder(3).Range(0, 100'000, 800'000).Sum(1).Build();

  // Workload advertises the SUM dim so prefix sums get built.
  Workload w;
  w.Add(q);
  BuildContext ctx;
  ctx.workload = &w;
  ctx.sample = DataSample::FromTable(t, 500, 1);

  FloodIndex::Options o;
  o.layout = GridLayout::Default(3, 64);
  FloodIndex with_sums(o);
  ASSERT_TRUE(with_sums.Build(t, ctx).ok());
  ASSERT_NE(with_sums.prefix_sums(1), nullptr);

  BuildContext ctx_no;
  ctx_no.sample = DataSample::FromTable(t, 500, 2);
  FloodIndex without(o);
  ASSERT_TRUE(without.Build(t, ctx_no).ok());
  EXPECT_EQ(without.prefix_sums(1), nullptr);

  const auto oracle = testing::BruteForce(t, q, 1);
  EXPECT_EQ(ExecuteAggregate(with_sums, q, nullptr).sum, oracle.sum);
  EXPECT_EQ(ExecuteAggregate(without, q, nullptr).sum, oracle.sum);
}

TEST(ExecutorTest, StatsTotalsAccumulate) {
  const Table t = testing::MakeTable(testing::DataShape::kUniform, 2000, 2,
                                     5);
  std::unique_ptr<MultiDimIndex> index = MakeFullScan();
  BuildContext ctx;
  ctx.sample = DataSample::FromTable(t, 100, 1);
  ASSERT_TRUE(index->Build(t, ctx).ok());
  QueryStats stats;
  Query q = QueryBuilder(2).Range(0, 0, 100'000).Build();
  (void)ExecuteAggregate(*index, q, &stats);
  (void)ExecuteAggregate(*index, q, &stats);
  EXPECT_EQ(stats.points_scanned, 4000u);  // Accumulated across queries.
  EXPECT_GT(stats.total_ns, 0);
  EXPECT_GE(stats.ScanOverhead(), 1.0);
}

// The shim short-circuits empty queries without dispatching: no counters
// move, even on a full scan.
TEST(ExecutorTest, EmptyQueryShortCircuits) {
  const Table t = testing::MakeTable(testing::DataShape::kUniform, 2000, 2,
                                     6);
  std::unique_ptr<MultiDimIndex> index = MakeFullScan();
  BuildContext ctx;
  ctx.sample = DataSample::FromTable(t, 100, 1);
  ASSERT_TRUE(index->Build(t, ctx).ok());
  Query q(2);
  q.SetRange(0, 100, 50);  // Inverted: empty.
  QueryStats stats;
  const AggResult r = ExecuteAggregate(*index, q, &stats);
  EXPECT_EQ(r.count, 0u);
  EXPECT_EQ(stats.points_scanned, 0u);
  EXPECT_EQ(stats.cells_visited, 0u);
  EXPECT_EQ(stats.total_ns, 0);
}

// The MultiDimIndex threading contract: Execute is const and re-entrant,
// so one built index answers concurrent queries correctly with no
// synchronization. Runs Flood (learned layout + cell models, the most
// stateful query path) under maximal thread overlap; TSan checks the rest.
TEST(ExecutorTest, ConcurrentExecuteOnOneIndexIsReentrant) {
  const Table t = testing::MakeTable(testing::DataShape::kClustered, 4000, 3,
                                     7);
  FloodIndex::Options o;
  o.layout = GridLayout::Default(3, 128);
  FloodIndex index(o);
  BuildContext ctx;
  ctx.sample = DataSample::FromTable(t, 500, 1);
  ASSERT_TRUE(index.Build(t, ctx).ok());

  std::vector<Query> queries;
  std::vector<uint64_t> expected;
  for (uint64_t seed = 0; seed < 16; ++seed) {
    queries.push_back(testing::RandomQuery(t, 1000 + seed));
    expected.push_back(testing::BruteForce(t, queries.back(), 0).count);
  }

  ThreadPool pool(4);
  std::vector<std::vector<uint64_t>> got(4);
  ParallelFor(pool, 4, 4, [&](size_t shard, size_t, size_t) {
    // Every worker runs the *same* queries against the shared index.
    for (const Query& q : queries) {
      QueryStats stats;
      got[shard].push_back(ExecuteAggregate(index, q, &stats).count);
    }
  });
  for (size_t shard = 0; shard < 4; ++shard) {
    EXPECT_EQ(got[shard], expected) << "worker " << shard;
  }
}

}  // namespace
}  // namespace flood
