// Fault-injection sweep over the failpoint framework (src/common/failpoint)
// and every hardened failure path behind it: WAL and snapshot faults must
// surface as typed Status (never crash, hang, or silently succeed) and
// never lose an acknowledged kSync write; the serving tier must shed
// accept storms politely, turn loop/recv/send failures into typed
// outcomes and counters, and keep answering kHealth; the client's
// deadlines and retry policy must make dead or overloaded servers a typed
// error instead of a hang. The whole binary is a no-op (GTEST_SKIP) when
// failpoints are compiled out — CI runs it under -DFLOOD_FAILPOINTS=ON
// with ASan.

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/database.h"
#include "common/failpoint.h"
#include "persist/snapshot.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "tests/test_util.h"

namespace flood {
namespace {

using testing::DataShape;
using testing::MakeTable;
using testing::TempFile;

/// Every failpoint site threaded through the codebase. The catalog sweep
/// at the bottom proves each one is armable and fires; keep in sync with
/// src/common/README.md.
constexpr const char* kSiteCatalog[] = {
    // persist/snapshot.cc
    "persist.dir_fsync",
    "persist.snapshot.open",
    "persist.snapshot.write",
    "persist.snapshot.fsync",
    "persist.snapshot.rename",
    "persist.snapshot.read",
    // persist/wal.cc
    "wal.read",
    "wal.open",
    "wal.write",
    "wal.append",
    "wal.fsync",
    "wal.truncate",
    // api/database.cc
    "db.compact",
    // serve/server.cc
    "serve.epoll_wait",
    "serve.accept",
    "serve.recv",
    "serve.send",
    // serve/client.cc
    "serve.client.connect",
    "serve.client.poll",
    "serve.client.send",
    "serve.client.recv",
};

class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!failpoint::kEnabled) {
      GTEST_SKIP() << "failpoints compiled out (build with "
                      "-DFLOOD_FAILPOINTS=ON)";
    }
    failpoint::DisarmAll();
  }
  void TearDown() override {
    if (failpoint::kEnabled) failpoint::DisarmAll();
  }
};

// --- Framework: spec grammar, triggers, counters ----------------------------

TEST_F(FaultInjectionTest, ConfigureParsesTheFullGrammar) {
  EXPECT_TRUE(failpoint::Configure("").ok());
  EXPECT_TRUE(failpoint::Configure("a.b=err:EIO").ok());
  EXPECT_TRUE(failpoint::Configure("a.b=err:28").ok());
  EXPECT_TRUE(
      failpoint::Configure("a.b=err:EIO@3;c.d=shortwrite:0.2;e.f=eintr:5")
          .ok());
  EXPECT_TRUE(failpoint::Configure("a.b=err:ENOSPC@every:7").ok());
  EXPECT_TRUE(failpoint::Configure("a.b=err:EIO@p:0.5").ok());
  EXPECT_TRUE(failpoint::Configure("a.b=off").ok());

  EXPECT_FALSE(failpoint::Configure("noequals").ok());
  EXPECT_FALSE(failpoint::Configure("=err:EIO").ok());
  EXPECT_FALSE(failpoint::Configure("a.b=err:EWHAT").ok());
  EXPECT_FALSE(failpoint::Configure("a.b=bogus").ok());
  EXPECT_FALSE(failpoint::Configure("a.b=shortwrite:1.5").ok());
  EXPECT_FALSE(failpoint::Configure("a.b=shortwrite:0").ok());
  EXPECT_FALSE(failpoint::Configure("a.b=eintr:0").ok());
  EXPECT_FALSE(failpoint::Configure("a.b=err:EIO@every:0").ok());
  EXPECT_FALSE(failpoint::Configure("a.b=err:EIO@p:2").ok());
  EXPECT_FALSE(failpoint::Configure("a.b=err:EIO@wat").ok());
  EXPECT_FALSE(failpoint::Configure("a.b=off:1").ok());
}

TEST_F(FaultInjectionTest, TriggersFireOnSchedule) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  char byte = 'x';

  // One-shot on the 2nd hit.
  ASSERT_TRUE(failpoint::Arm("t.oneshot", "err:EIO@2").ok());
  EXPECT_EQ(failpoint::InjectedWrite("t.oneshot", fds[1], &byte, 1), 1);
  errno = 0;
  EXPECT_EQ(failpoint::InjectedWrite("t.oneshot", fds[1], &byte, 1), -1);
  EXPECT_EQ(errno, EIO);
  EXPECT_EQ(failpoint::InjectedWrite("t.oneshot", fds[1], &byte, 1), 1);
  EXPECT_EQ(failpoint::Hits("t.oneshot"), 3u);
  EXPECT_EQ(failpoint::Triggers("t.oneshot"), 1u);

  // @once is one-shot relative to the *current* hit count.
  ASSERT_TRUE(failpoint::Arm("t.oneshot", "err:ENOSPC@once").ok());
  errno = 0;
  EXPECT_EQ(failpoint::InjectedWrite("t.oneshot", fds[1], &byte, 1), -1);
  EXPECT_EQ(errno, ENOSPC);
  EXPECT_EQ(failpoint::InjectedWrite("t.oneshot", fds[1], &byte, 1), 1);

  // Every 2nd hit.
  ASSERT_TRUE(failpoint::Arm("t.nth", "err:EIO@every:2").ok());
  int failures = 0;
  for (int i = 0; i < 6; ++i) {
    if (failpoint::InjectedWrite("t.nth", fds[1], &byte, 1) < 0) ++failures;
  }
  EXPECT_EQ(failures, 3);

  // p:1 always fires, and the seed makes probabilistic schedules
  // reproducible.
  failpoint::SetSeed(1234);
  ASSERT_TRUE(failpoint::Arm("t.prob", "err:EIO@p:1.0").ok());
  EXPECT_EQ(failpoint::InjectedWrite("t.prob", fds[1], &byte, 1), -1);

  // Disarm stops injection but keeps counters.
  failpoint::Disarm("t.prob");
  EXPECT_EQ(failpoint::InjectedWrite("t.prob", fds[1], &byte, 1), 1);
  EXPECT_EQ(failpoint::Hits("t.prob"), 2u);
  EXPECT_EQ(failpoint::Triggers("t.prob"), 1u);

  ::close(fds[0]);
  ::close(fds[1]);
}

TEST_F(FaultInjectionTest, EintrStormsAreFinite) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  char byte = 'x';
  ASSERT_TRUE(failpoint::Arm("t.eintr", "eintr:3").ok());
  // A retrying call site (like every WriteAllFd/recv loop in the tree)
  // must always make progress: 3 EINTRs, then one real write, repeating.
  int eintrs = 0;
  int successes = 0;
  for (int i = 0; i < 8; ++i) {
    const ssize_t n = failpoint::InjectedWrite("t.eintr", fds[1], &byte, 1);
    if (n < 0) {
      EXPECT_EQ(errno, EINTR);
      ++eintrs;
    } else {
      ++successes;
    }
  }
  EXPECT_EQ(eintrs, 6);
  EXPECT_EQ(successes, 2);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST_F(FaultInjectionTest, ShortWritesTransferAtLeastOneByte) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  const std::string payload(100, 'a');
  ASSERT_TRUE(failpoint::Arm("t.short", "shortwrite:0.3").ok());
  const ssize_t n = failpoint::InjectedWrite("t.short", fds[1],
                                             payload.data(), payload.size());
  EXPECT_EQ(n, 30);  // floor(0.3 * 100), clamped to [1, n-1].
  // A 1-byte request cannot be shortened; it passes through whole.
  char byte = 'b';
  EXPECT_EQ(failpoint::InjectedWrite("t.short", fds[1], &byte, 1), 1);
  ::close(fds[0]);
  ::close(fds[1]);
}

// --- Persistence: WAL faults ------------------------------------------------

DatabaseOptions WalOptions(const std::string& wal_path) {
  DatabaseOptions options;
  options.index_name = "full_scan";
  options.wal_path = wal_path;
  options.durability = Durability::kSync;
  return options;
}

std::vector<Value> PatternRow(uint64_t i) {
  return {static_cast<Value>(i), static_cast<Value>(i * 7 + 3)};
}

TEST_F(FaultInjectionTest, WalFsyncFailureIsTypedAndStagesNothing) {
  const Table base = MakeTable(DataShape::kUniform, 200, 2, 17);
  TempFile wal("fi_fsync.wal");
  StatusOr<Database> db = Database::Open(base, WalOptions(wal.path()));
  ASSERT_TRUE(db.ok());

  ASSERT_TRUE(failpoint::Arm("wal.fsync", "err:EIO").ok());
  const Status failed = db->Insert(PatternRow(0));
  ASSERT_FALSE(failed.ok());
  EXPECT_NE(failed.message().find("fsync"), std::string::npos);
  // Log-before-mutate: the unacknowledged row was not staged.
  EXPECT_EQ(db->pending_writes(), 0u);
  EXPECT_EQ(db->num_rows(), 200u);

  // The failure was transient, not sticky: disarmed, writes flow again.
  failpoint::DisarmAll();
  ASSERT_TRUE(db->Insert(PatternRow(0)).ok());
  EXPECT_EQ(db->num_rows(), 201u);
}

TEST_F(FaultInjectionTest, AcknowledgedSyncWritesSurviveInjectedWalFaults) {
  // For each fault flavor: hammer inserts while the fault schedule fires,
  // remember exactly which ones were acknowledged, then reopen from
  // table + WAL and demand every acknowledged row (and no torn garbage)
  // is visible. This is the ISSUE's core durability acceptance.
  const char* kSchedules[] = {
      "wal.fsync=err:EIO@every:3",
      "wal.append=err:ENOSPC@every:4",
      "wal.append=shortwrite:0.4@every:2",
      "wal.append=eintr:3",
  };
  for (const char* schedule : kSchedules) {
    SCOPED_TRACE(schedule);
    failpoint::DisarmAll();
    const Table base = MakeTable(DataShape::kUniform, 150, 2, 29);
    TempFile wal("fi_survive.wal");
    std::vector<uint64_t> acked;
    {
      StatusOr<Database> db = Database::Open(base, WalOptions(wal.path()));
      ASSERT_TRUE(db.ok());
      ASSERT_TRUE(failpoint::Configure(schedule).ok());
      for (uint64_t i = 0; i < 24; ++i) {
        if (db->Insert(PatternRow(i)).ok()) acked.push_back(i);
      }
      failpoint::DisarmAll();
      // The db is dropped *without* a checkpoint: recovery must come
      // entirely from the WAL.
    }
    // Short writes and finite EINTR storms are retried through to
    // success by the call-site loops; only hard errno injections shed.
    if (std::string(schedule).find("err:") == std::string::npos) {
      EXPECT_EQ(acked.size(), 24u);
    } else {
      EXPECT_LT(acked.size(), 24u);
      EXPECT_GT(acked.size(), 0u);
    }

    StatusOr<Database> reopened =
        Database::Open(base, WalOptions(wal.path()));
    ASSERT_TRUE(reopened.ok());
    EXPECT_GE(reopened->num_rows(), 150u + acked.size());
    for (const uint64_t i : acked) {
      const std::vector<Value> row = PatternRow(i);
      Query probe(2);
      probe.SetEquals(0, row[0]);
      probe.SetEquals(1, row[1]);
      const QueryResult r = reopened->Run(probe);
      EXPECT_GE(r.count, 1u) << "acknowledged row " << i << " lost";
    }
  }
}

TEST_F(FaultInjectionTest, WalTruncateFailureAtCheckpointDetachesTheWal) {
  const Table base = MakeTable(DataShape::kUniform, 120, 2, 31);
  TempFile wal("fi_detach.wal");
  TempFile snap("fi_detach.snap");
  StatusOr<Database> db = Database::Open(base, WalOptions(wal.path()));
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE(db->Insert(PatternRow(1)).ok());

  // The snapshot itself succeeds; resetting the WAL to the new epoch
  // fails. The WAL must detach and refuse writes — acknowledging through
  // a log that no longer pairs with the snapshot would be a lie.
  ASSERT_TRUE(failpoint::Arm("wal.truncate", "err:EIO@once").ok());
  const Status saved = db->Save(snap.path());
  ASSERT_FALSE(saved.ok());
  EXPECT_NE(saved.message().find("detached"), std::string::npos);
  const Status refused = db->Insert(PatternRow(2));
  ASSERT_FALSE(refused.ok());
  EXPECT_NE(refused.message().find("refused"), std::string::npos);
  // Reads still serve.
  EXPECT_EQ(db->num_rows(), 121u);

  // Reopening from the just-written snapshot recovers cleanly: the stale
  // lower-epoch WAL is discarded and a fresh one created.
  failpoint::DisarmAll();
  StatusOr<Database> reopened =
      Database::Open(snap.path(), WalOptions(wal.path()));
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened->num_rows(), 121u);
  EXPECT_TRUE(reopened->Insert(PatternRow(2)).ok());
}

// --- Persistence: snapshot faults -------------------------------------------

TEST_F(FaultInjectionTest, SnapshotFaultsAreTypedAndKeepThePreviousSnapshot) {
  const Table base = MakeTable(DataShape::kUniform, 150, 2, 41);
  TempFile snap("fi_snap.snap");
  DatabaseOptions options;
  options.index_name = "full_scan";
  StatusOr<Database> db = Database::Open(base, options);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE(db->Save(snap.path()).ok());
  ASSERT_TRUE(db->Insert(PatternRow(7)).ok());

  const char* kSites[] = {
      "persist.snapshot.open",
      "persist.snapshot.write",
      "persist.snapshot.fsync",
      "persist.snapshot.rename",
  };
  for (const char* site : kSites) {
    SCOPED_TRACE(site);
    ASSERT_TRUE(failpoint::Arm(site, "err:EIO@once").ok());
    const Status failed = db->Save(snap.path());
    ASSERT_FALSE(failed.ok());
    EXPECT_EQ(failed.code(), StatusCode::kInternal);
    // Checkpoint health is poisoned, but reads and writes keep serving.
    EXPECT_TRUE(db->persistence_poisoned());
    EXPECT_EQ(db->num_rows(), 151u);

    // The atomic write protocol never damages the previous snapshot.
    StatusOr<Database> previous = Database::Open(snap.path(), options);
    ASSERT_TRUE(previous.ok());
    EXPECT_EQ(previous->num_rows(), 150u);
  }

  // Once the faults clear, the next checkpoint succeeds and un-poisons.
  failpoint::DisarmAll();
  ASSERT_TRUE(db->Save(snap.path()).ok());
  EXPECT_FALSE(db->persistence_poisoned());
  StatusOr<Database> current = Database::Open(snap.path(), options);
  ASSERT_TRUE(current.ok());
  EXPECT_EQ(current->num_rows(), 151u);
}

TEST_F(FaultInjectionTest, EnospcPoisonsPersistenceButReadsServe) {
  const Table base = MakeTable(DataShape::kUniform, 100, 2, 43);
  TempFile snap("fi_enospc.snap");
  DatabaseOptions options;
  options.index_name = "full_scan";
  StatusOr<Database> db = Database::Open(base, options);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE(db->Save(snap.path()).ok());

  ASSERT_TRUE(
      failpoint::Arm("persist.snapshot.write", "err:ENOSPC@once").ok());
  const Status failed = db->Save(snap.path());
  ASSERT_FALSE(failed.ok());
  EXPECT_NE(failed.message().find("No space"), std::string::npos);
  EXPECT_TRUE(db->persistence_poisoned());
  EXPECT_FALSE(db->persistence_status().ok());

  // Reads and writes are untouched by a poisoned checkpoint.
  Query q(2);
  q.SetRange(0, 0, 1'000'000);
  EXPECT_GT(db->Run(q).count, 0u);
  EXPECT_TRUE(db->Insert(PatternRow(9)).ok());
}

TEST_F(FaultInjectionTest, DirFsyncFailuresAreCountedNotFatal) {
  const Table base = MakeTable(DataShape::kUniform, 80, 2, 47);
  TempFile snap("fi_dirfsync.snap");
  DatabaseOptions options;
  options.index_name = "full_scan";
  StatusOr<Database> db = Database::Open(base, options);
  ASSERT_TRUE(db.ok());

  const uint64_t before = persist::DirFsyncFailures();
  ASSERT_TRUE(failpoint::Arm("persist.dir_fsync", "err:EIO").ok());
  // Same policy as a missing-parent open: the data file itself is synced
  // and intact, only the *directory entry's* durability is reduced — the
  // failure is surfaced through the counter, not by failing the save.
  EXPECT_TRUE(db->Save(snap.path()).ok());
  EXPECT_GT(persist::DirFsyncFailures(), before);
  failpoint::DisarmAll();
  StatusOr<Database> reopened = Database::Open(snap.path(), options);
  ASSERT_TRUE(reopened.ok());
}

TEST_F(FaultInjectionTest, OpenPathFaultsAreTypedNotFatal) {
  const Table base = MakeTable(DataShape::kUniform, 90, 2, 59);
  TempFile wal("fi_open.wal");
  TempFile snap("fi_open.snap");
  {
    StatusOr<Database> db = Database::Open(base, WalOptions(wal.path()));
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE(db->Insert(PatternRow(3)).ok());
    ASSERT_TRUE(db->Save(snap.path()).ok());
  }

  // WAL open failure at Database::Open: typed, no crash, no partial db.
  // (A fresh path — the wal above now sits at the snapshot's epoch and
  // would be rejected as ahead of the bare base table anyway.)
  TempFile wal2("fi_open2.wal");
  ASSERT_TRUE(failpoint::Arm("wal.open", "err:EACCES@once").ok());
  StatusOr<Database> no_wal = Database::Open(base, WalOptions(wal2.path()));
  ASSERT_FALSE(no_wal.ok());
  EXPECT_GE(failpoint::Triggers("wal.open"), 1u);
  failpoint::DisarmAll();
  StatusOr<Database> with_wal =
      Database::Open(base, WalOptions(wal2.path()));
  ASSERT_TRUE(with_wal.ok());  // Same call succeeds sans injection.

  // Snapshot read failure at Database::Open(path): same.
  failpoint::DisarmAll();
  ASSERT_TRUE(failpoint::Arm("persist.snapshot.read", "err:EIO@once").ok());
  DatabaseOptions options;
  options.index_name = "full_scan";
  StatusOr<Database> no_snap = Database::Open(snap.path(), options);
  ASSERT_FALSE(no_snap.ok());

  // Short reads on the same seams are retried through to success by the
  // read loops — a slow-trickling disk is not an error.
  failpoint::DisarmAll();
  ASSERT_TRUE(
      failpoint::Arm("persist.snapshot.read", "shortread:0.5").ok());
  StatusOr<Database> trickled = Database::Open(snap.path(), options);
  ASSERT_TRUE(trickled.ok());
  EXPECT_EQ(trickled->num_rows(), 91u);
  EXPECT_GT(failpoint::Triggers("persist.snapshot.read"), 1u);
}

TEST_F(FaultInjectionTest, ProbabilisticSchedulesAreSeedDeterministic) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  char byte = 'q';
  auto schedule = [&](uint64_t seed) {
    failpoint::DisarmAll();
    failpoint::SetSeed(seed);
    FLOOD_CHECK(failpoint::Arm("t.seed", "err:EIO@p:0.5").ok());
    std::string pattern;
    for (int i = 0; i < 32; ++i) {
      pattern +=
          failpoint::InjectedWrite("t.seed", fds[1], &byte, 1) < 0 ? 'X'
                                                                   : '.';
    }
    return pattern;
  };
  const std::string a = schedule(99);
  const std::string b = schedule(99);
  const std::string c = schedule(100);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);  // 2^-32 flake odds: distinct seeds, identical runs.
  EXPECT_NE(a.find('X'), std::string::npos);
  EXPECT_NE(a.find('.'), std::string::npos);
  ::close(fds[0]);
  ::close(fds[1]);
}

// --- Auto-compaction backoff ------------------------------------------------

TEST_F(FaultInjectionTest, AutoCompactionBacksOffAfterInjectedFailure) {
  const Table base = MakeTable(DataShape::kUniform, 100, 2, 53);
  DatabaseOptions options;
  options.index_name = "full_scan";
  options.auto_retrain_fraction = 0.1;  // Threshold: > 10 staged writes.
  StatusOr<Database> db = Database::Open(base, options);
  ASSERT_TRUE(db.ok());

  ASSERT_TRUE(failpoint::Arm("db.compact", "err:EIO").ok());
  // Crossing the threshold triggers exactly one (failing) attempt...
  for (uint64_t i = 0; i < 11; ++i) {
    ASSERT_TRUE(db->Insert(PatternRow(i)).ok());
  }
  EXPECT_EQ(failpoint::Hits("db.compact"), 1u);
  EXPECT_FALSE(db->last_auto_compact_status().ok());
  EXPECT_EQ(db->pending_writes(), 11u);  // Nothing lost.

  // ...and the backoff suppresses retries until the delta has DOUBLED
  // (11 -> 22), not on every write.
  for (uint64_t i = 11; i < 21; ++i) {
    ASSERT_TRUE(db->Insert(PatternRow(i)).ok());
  }
  EXPECT_EQ(failpoint::Hits("db.compact"), 1u);
  ASSERT_TRUE(db->Insert(PatternRow(21)).ok());  // pending = 22: retry.
  EXPECT_EQ(failpoint::Hits("db.compact"), 2u);
  EXPECT_FALSE(db->last_auto_compact_status().ok());

  // Fault cleared: the next backoff expiry (44 staged) compacts for real,
  // clears the backoff and the sticky error, and drains the delta.
  failpoint::Disarm("db.compact");
  for (uint64_t i = 22; i < 44; ++i) {
    ASSERT_TRUE(db->Insert(PatternRow(i)).ok());
  }
  EXPECT_EQ(failpoint::Hits("db.compact"), 3u);
  EXPECT_TRUE(db->last_auto_compact_status().ok());
  EXPECT_EQ(db->pending_writes(), 0u);
  EXPECT_EQ(db->compactions(), 1u);
  EXPECT_EQ(db->num_rows(), 144u);
}

// --- Serving tier -----------------------------------------------------------

std::string UniqueSock(const std::string& tag) {
  static std::atomic<int> counter{0};
  return ::testing::TempDir() + "flood_fi_" + std::to_string(::getpid()) +
         "_" + tag + "_" + std::to_string(counter.fetch_add(1)) + ".sock";
}

struct ServeHarness {
  std::unique_ptr<Database> db;
  std::unique_ptr<serve::Server> server;
  std::string address;

  explicit ServeHarness(const std::string& tag,
                        serve::ServerOptions sopts = {},
                        size_t rows = 2'000) {
    const Table base = MakeTable(DataShape::kUniform, rows, 2, 61);
    DatabaseOptions options;
    options.index_name = "full_scan";
    options.num_threads = 2;
    StatusOr<Database> opened = Database::Open(base, options);
    FLOOD_CHECK(opened.ok());
    db = std::make_unique<Database>(std::move(*opened));
    sopts.uds_path = UniqueSock(tag);
    StatusOr<std::unique_ptr<serve::Server>> created =
        serve::Server::Create(db.get(), std::move(sopts));
    FLOOD_CHECK(created.ok());
    server = std::move(*created);
    address = "unix:" + server->uds_path();
    server->Start();
  }
  ~ServeHarness() {
    if (server != nullptr) {
      server->Shutdown();
      (void)server->Join();
      ::unlink(server->uds_path().c_str());
    }
  }
};

serve::ClientOptions FastClientOptions() {
  serve::ClientOptions copts;
  copts.connect_timeout_ms = 5'000;
  copts.send_timeout_ms = 5'000;
  copts.recv_timeout_ms = 10'000;
  return copts;
}

TEST_F(FaultInjectionTest, EpollWaitFailureSurfacesAsTypedJoinStatus) {
  ServeHarness h("epoll");
  serve::ClientOptions copts = FastClientOptions();
  // The wake ping below races the loop's exit and may never be answered;
  // a short recv deadline keeps the race from stalling the test.
  copts.recv_timeout_ms = 300;
  StatusOr<serve::Client> client = serve::Client::Connect(h.address, copts);
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->Ping().ok());

  // The next epoll_wait call fails hard. The loop must exit with a typed
  // Internal — not break silently — and count it.
  ASSERT_TRUE(failpoint::Arm("serve.epoll_wait", "err:EBADF@once").ok());
  // Wake the loop so it re-enters epoll_wait promptly.
  (void)client->Ping();

  const Status loop = h.server->Join();
  ASSERT_FALSE(loop.ok());
  EXPECT_EQ(loop.code(), StatusCode::kInternal);
  EXPECT_NE(loop.message().find("epoll_wait"), std::string::npos);
  EXPECT_EQ(h.server->counters().loop_errors, 1u);
}

TEST_F(FaultInjectionTest, AcceptResourceExhaustionShedsWithoutSpinning) {
  ServeHarness h("accept");
  StatusOr<serve::Client> established =
      serve::Client::Connect(h.address, FastClientOptions());
  ASSERT_TRUE(established.ok());
  ASSERT_TRUE(established->Ping().ok());

  ASSERT_TRUE(failpoint::Arm("serve.accept", "err:EMFILE").ok());
  // The kernel still queues the connection in the backlog; the server
  // can't accept it while the fault holds.
  StatusOr<serve::Client> pending =
      serve::Client::Connect(h.address, FastClientOptions());
  ASSERT_TRUE(pending.ok());

  std::this_thread::sleep_for(std::chrono::milliseconds(250));
  const serve::ServerCounters during = h.server->counters();
  EXPECT_GE(during.accept_failures, 1u);
  // Cooldown, not a level-triggered spin: a spinning loop would rack up
  // thousands of hits in 250ms; the pause keeps it to ~1 per 50ms window.
  EXPECT_LT(failpoint::Hits("serve.accept"), 64u);
  // Established connections keep being served throughout.
  EXPECT_TRUE(established->Ping().ok());

  // Fault clears: the listener re-arms after the cooldown and the backlog
  // connection finally gets accepted and served.
  failpoint::Disarm("serve.accept");
  EXPECT_TRUE(pending->Ping().ok());
}

TEST_F(FaultInjectionTest, ShortSendsStillDeliverCompleteReplies) {
  ServeHarness h("shortsend");
  ASSERT_TRUE(failpoint::Arm("serve.send", "shortwrite:0.2").ok());
  StatusOr<serve::Client> client =
      serve::Client::Connect(h.address, FastClientOptions());
  ASSERT_TRUE(client.ok());

  std::vector<Query> queries;
  for (int i = 0; i < 8; ++i) {
    Query q(2);
    q.SetRange(0, 0, 500'000);
    q.SetRange(1, 100'000 * i, 100'000 * i + 400'000);
    queries.push_back(std::move(q));
  }
  StatusOr<serve::BatchResultResponse> reply = client->RunBatch(queries);
  ASSERT_TRUE(reply.ok());
  ASSERT_EQ(reply->code, serve::WireCode::kOk);
  ASSERT_EQ(reply->results.size(), queries.size());
  EXPECT_GT(failpoint::Triggers("serve.send"), 0u);
  failpoint::DisarmAll();
  // Byte-identical to in-process execution despite the fragmented sends.
  const BatchResult direct = h.db->RunBatch(queries);
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(reply->results[i].count, direct.results[i].count);
  }
}

TEST_F(FaultInjectionTest, RecvFailureClosesTheConnectionAndCounts) {
  ServeHarness h("recverr");
  StatusOr<serve::Client> client =
      serve::Client::Connect(h.address, FastClientOptions());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->Ping().ok());

  ASSERT_TRUE(failpoint::Arm("serve.recv", "err:ECONNRESET@once").ok());
  const Status pinged = client->Ping();
  ASSERT_FALSE(pinged.ok());
  // Closing a UDS with unread bytes in its buffer surfaces client-side
  // as either a clean EOF or ECONNRESET; both are typed, neither hangs.
  EXPECT_TRUE(pinged.message().find("closed") != std::string::npos ||
              pinged.message().find("reset") != std::string::npos)
      << pinged.message();
  EXPECT_EQ(h.server->counters().recv_errors, 1u);
  // The server survives: a fresh connection works.
  StatusOr<serve::Client> again =
      serve::Client::Connect(h.address, FastClientOptions());
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again->Ping().ok());
}

TEST_F(FaultInjectionTest, HealthReportsReadinessAndPersistencePoison) {
  TempFile snap("fi_health.snap");
  ServeHarness h("health");
  ASSERT_TRUE(h.db->Save(snap.path()).ok());
  StatusOr<serve::Client> client =
      serve::Client::Connect(h.address, FastClientOptions());
  ASSERT_TRUE(client.ok());

  StatusOr<serve::HealthResponse> health = client->Health();
  ASSERT_TRUE(health.ok());
  EXPECT_TRUE(health->ready);
  EXPECT_FALSE(health->draining);
  EXPECT_FALSE(health->persist_poisoned);
  EXPECT_GE(health->connections_active, 1u);

  // A failed checkpoint degrades the health report without taking the
  // server down.
  ASSERT_TRUE(
      failpoint::Arm("persist.snapshot.write", "err:ENOSPC@once").ok());
  ASSERT_FALSE(h.db->Save(snap.path()).ok());
  health = client->Health();
  ASSERT_TRUE(health.ok());
  EXPECT_TRUE(health->ready);
  EXPECT_TRUE(health->persist_poisoned);

  // Recovery un-poisons.
  ASSERT_TRUE(h.db->Save(snap.path()).ok());
  health = client->Health();
  ASSERT_TRUE(health.ok());
  EXPECT_FALSE(health->persist_poisoned);
  EXPECT_GE(h.server->counters().health_checks, 3u);
}

// --- Client deadlines + retry -----------------------------------------------

TEST_F(FaultInjectionTest, RecvDeadlineFiresAgainstASilentServer) {
  // A listener that never accepts: connects land in the backlog and no
  // byte ever comes back. Without deadlines Ping would hang forever.
  const std::string path = UniqueSock("silent");
  const int listener = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  ASSERT_GE(listener, 0);
  struct sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  ASSERT_EQ(::bind(listener, reinterpret_cast<struct sockaddr*>(&addr),
                   sizeof(addr)),
            0);
  ASSERT_EQ(::listen(listener, 8), 0);

  serve::ClientOptions copts;
  copts.connect_timeout_ms = 1'000;
  copts.recv_timeout_ms = 150;
  StatusOr<serve::Client> client =
      serve::Client::Connect("unix:" + path, copts);
  ASSERT_TRUE(client.ok());
  const auto start = std::chrono::steady_clock::now();
  const Status pinged = client->Ping();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  ASSERT_FALSE(pinged.ok());
  EXPECT_EQ(pinged.code(), StatusCode::kDeadlineExceeded);
  EXPECT_LT(elapsed, std::chrono::seconds(5));
  ::close(listener);
  ::unlink(path.c_str());
}

TEST_F(FaultInjectionTest, ConnectRefusalIsUnavailableAndRetriedExactly) {
  // Nothing has ever listened on this path: every attempt is refused.
  serve::ClientOptions copts;
  copts.retry.max_attempts = 3;
  copts.retry.initial_backoff_ms = 1;
  copts.retry.max_backoff_ms = 4;
  const uint64_t before = failpoint::Hits("serve.client.connect");
  StatusOr<serve::Client> client = serve::Client::Connect(
      "unix:" + UniqueSock("refused"), copts);
  ASSERT_FALSE(client.ok());
  EXPECT_EQ(client.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(failpoint::Hits("serve.client.connect") - before, 3u);

  // A closed TCP port refuses too — same typed outcome.
  StatusOr<serve::Client> tcp = serve::Client::Connect("127.0.0.1:1", copts);
  ASSERT_FALSE(tcp.ok());
  EXPECT_EQ(tcp.status().code(), StatusCode::kUnavailable);
}

TEST_F(FaultInjectionTest, ConnectRetrySucceedsOnceTheRefusalClears) {
  ServeHarness h("retryconn");
  // First attempt is injected-refused; the retry connects for real.
  ASSERT_TRUE(
      failpoint::Arm("serve.client.connect", "err:ECONNREFUSED@once").ok());
  serve::ClientOptions copts = FastClientOptions();
  copts.retry.max_attempts = 3;
  copts.retry.initial_backoff_ms = 1;
  StatusOr<serve::Client> client = serve::Client::Connect(h.address, copts);
  ASSERT_TRUE(client.ok());
  EXPECT_TRUE(client->Ping().ok());
  EXPECT_EQ(failpoint::Triggers("serve.client.connect"), 1u);
}

TEST_F(FaultInjectionTest, OverloadShedsAreRetriedToSuccess) {
  serve::ServerOptions sopts;
  sopts.max_inflight_batches = 1;
  ServeHarness h("overload", sopts, 50'000);

  // Saturate the 1-slot queue with one big pipelined batch...
  StatusOr<serve::Client> hog =
      serve::Client::Connect(h.address, FastClientOptions());
  ASSERT_TRUE(hog.ok());
  std::vector<Query> heavy;
  for (int i = 0; i < 256; ++i) {
    Query q(2);
    q.SetRange(0, 0, 900'000);
    heavy.push_back(std::move(q));
  }
  ASSERT_TRUE(hog->SendRunBatch(1, heavy).ok());

  // ...then a competing client with retry enabled must eventually get a
  // real answer (first attempts may be shed kOverloaded).
  serve::ClientOptions copts = FastClientOptions();
  copts.retry.max_attempts = 50;
  copts.retry.initial_backoff_ms = 5;
  copts.retry.max_backoff_ms = 50;
  StatusOr<serve::Client> client = serve::Client::Connect(h.address, copts);
  ASSERT_TRUE(client.ok());
  Query q(2);
  q.SetRange(0, 0, 100'000);
  StatusOr<serve::BatchResultResponse> reply = client->RunBatch({&q, 1});
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->code, serve::WireCode::kOk);
  ASSERT_EQ(reply->results.size(), 1u);

  StatusOr<serve::BatchResultResponse> hogged = hog->ReadBatchReply();
  ASSERT_TRUE(hogged.ok());
  EXPECT_EQ(hogged->code, serve::WireCode::kOk);
}

TEST_F(FaultInjectionTest, ClientSendEintrStormsAreAbsorbed) {
  ServeHarness h("clienteintr");
  ASSERT_TRUE(failpoint::Arm("serve.client.send", "eintr:4").ok());
  ASSERT_TRUE(failpoint::Arm("serve.client.recv", "eintr:4").ok());
  StatusOr<serve::Client> client =
      serve::Client::Connect(h.address, FastClientOptions());
  ASSERT_TRUE(client.ok());
  EXPECT_TRUE(client->Ping().ok());
  EXPECT_GT(failpoint::Triggers("serve.client.send"), 0u);
}

// --- Catalog sweep ----------------------------------------------------------

TEST_F(FaultInjectionTest, EveryCatalogSiteArmsFiresAndDisarms) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  char byte = 'z';
  for (const char* site : kSiteCatalog) {
    SCOPED_TRACE(site);
    ASSERT_TRUE(failpoint::Arm(site, "err:EIO@once").ok());
    // The registry is shared by every wrapper; driving the site through
    // a scratch fd proves arm -> fire -> typed errno -> auto-disarm for
    // the whole catalog, independent of each site's subsystem test above.
    errno = 0;
    EXPECT_EQ(failpoint::InjectedWrite(site, fds[1], &byte, 1), -1);
    EXPECT_EQ(errno, EIO);
    EXPECT_EQ(failpoint::InjectedWrite(site, fds[1], &byte, 1), 1);
    EXPECT_GE(failpoint::Hits(site), 2u);
    EXPECT_GE(failpoint::Triggers(site), 1u);
  }
  const std::vector<std::string> sites = failpoint::Sites();
  for (const char* site : kSiteCatalog) {
    EXPECT_NE(std::find(sites.begin(), sites.end(), std::string(site)),
              sites.end());
  }
  ::close(fds[0]);
  ::close(fds[1]);
}

}  // namespace
}  // namespace flood
