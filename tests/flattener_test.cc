#include <gtest/gtest.h>

#include "core/flattener.h"
#include "tests/test_util.h"

namespace flood {
namespace {

using testing::DataShape;
using testing::MakeTable;

class FlattenerTest : public ::testing::TestWithParam<DataShape> {};

TEST_P(FlattenerTest, ToUnitIsMonotoneAndBounded) {
  const Table t = MakeTable(GetParam(), 10'000, 3, 31);
  const Flattener f =
      Flattener::Train(t, Flattener::Mode::kCdf, 5000, 1, 64);
  Rng rng(32);
  for (size_t dim = 0; dim < 3; ++dim) {
    std::vector<Value> probes;
    for (int i = 0; i < 1000; ++i) {
      probes.push_back(
          rng.UniformInt(t.min_value(dim) - 10, t.max_value(dim) + 10));
    }
    std::sort(probes.begin(), probes.end());
    double prev = -1;
    for (Value p : probes) {
      const double u = f.ToUnit(dim, p);
      EXPECT_GE(u, 0.0);
      EXPECT_LE(u, 1.0);
      EXPECT_GE(u, prev);
      prev = u;
    }
  }
}

TEST_P(FlattenerTest, CdfEvensOutColumnOccupancy) {
  const Table t = MakeTable(GetParam(), 20'000, 1, 33);
  const Flattener flat =
      Flattener::Train(t, Flattener::Mode::kCdf, 20'000, 2, 128);
  constexpr uint32_t kCols = 16;
  std::vector<size_t> counts(kCols, 0);
  for (RowId r = 0; r < t.num_rows(); ++r) {
    counts[flat.ColumnOf(0, t.Get(r, 0), kCols)]++;
  }
  const size_t expected = t.num_rows() / kCols;
  size_t max_count = 0;
  for (size_t c : counts) max_count = std::max(max_count, c);
  // Flattened columns should not exceed ~4x the even share even on skewed
  // shapes (duplicates can exceed: all equal values share one column).
  if (GetParam() != DataShape::kDuplicates) {
    EXPECT_LT(max_count, expected * 4) << "columns badly imbalanced";
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, FlattenerTest,
                         ::testing::Values(DataShape::kUniform,
                                           DataShape::kSkewed,
                                           DataShape::kClustered,
                                           DataShape::kDuplicates),
                         [](const auto& info) {
                           return testing::DataShapeName(info.param);
                         });

TEST(FlattenerLinearTest, EqualWidthColumns) {
  StatusOr<Table> t = Table::FromColumns({{0, 100, 200, 300, 400}});
  ASSERT_TRUE(t.ok());
  const Flattener f =
      Flattener::Train(*t, Flattener::Mode::kLinear, 100, 1);
  EXPECT_DOUBLE_EQ(f.ToUnit(0, 0), 0.0);
  EXPECT_NEAR(f.ToUnit(0, 200), 0.5, 0.01);
  EXPECT_NEAR(f.ToUnit(0, 400), 1.0, 0.01);
  EXPECT_EQ(f.ColumnOf(0, 0, 4), 0u);
  EXPECT_EQ(f.ColumnOf(0, 399, 4), 3u);
  EXPECT_EQ(f.ColumnOf(0, 400, 4), 3u);  // Clamped.
}

TEST(FlattenerLinearTest, ConstantColumnMapsToZero) {
  StatusOr<Table> t = Table::FromColumns({{7, 7, 7}});
  ASSERT_TRUE(t.ok());
  const Flattener f = Flattener::Train(*t, Flattener::Mode::kLinear, 10, 1);
  EXPECT_DOUBLE_EQ(f.ToUnit(0, 7), 0.0);
  EXPECT_EQ(f.ColumnOf(0, 7, 8), 0u);
}

// The property Flood's correctness rests on: any point whose column is
// strictly between the query endpoints' columns must satisfy the filter.
TEST(FlattenerTest, InteriorColumnGuarantee) {
  for (DataShape shape : {DataShape::kUniform, DataShape::kSkewed,
                          DataShape::kClustered, DataShape::kDuplicates}) {
    const Table t = MakeTable(shape, 5000, 1, 35);
    for (Flattener::Mode mode :
         {Flattener::Mode::kCdf, Flattener::Mode::kLinear}) {
      const Flattener f = Flattener::Train(t, mode, 1000, 3, 32);
      Rng rng(36);
      for (uint32_t cols : {2u, 7u, 64u}) {
        for (int trial = 0; trial < 50; ++trial) {
          Value lo = rng.UniformInt(t.min_value(0), t.max_value(0));
          Value hi = rng.UniformInt(t.min_value(0), t.max_value(0));
          if (lo > hi) std::swap(lo, hi);
          const uint32_t col_lo = f.ColumnOf(0, lo, cols);
          const uint32_t col_hi = f.ColumnOf(0, hi, cols);
          ASSERT_LE(col_lo, col_hi);
          for (RowId r = 0; r < t.num_rows(); ++r) {
            const Value v = t.Get(r, 0);
            const uint32_t c = f.ColumnOf(0, v, cols);
            if (c > col_lo && c < col_hi) {
              EXPECT_GE(v, lo) << "interior column violates lower bound";
              EXPECT_LE(v, hi) << "interior column violates upper bound";
            }
          }
        }
      }
    }
  }
}

}  // namespace
}  // namespace flood
