#include <gtest/gtest.h>

#include "core/flood_index.h"
#include "query/executor.h"
#include "tests/test_util.h"

namespace flood {
namespace {

using testing::BruteForce;
using testing::DataShape;
using testing::MakeTable;
using testing::RandomQuery;

BuildContext MakeCtx(const Table& t, const Workload* w = nullptr) {
  BuildContext ctx;
  ctx.workload = w;
  ctx.sample = DataSample::FromTable(t, 1000, 5);
  return ctx;
}

TEST(FloodIndexTest, BuildRejectsInvalidLayout) {
  const Table t = MakeTable(DataShape::kUniform, 100, 3, 1);
  FloodIndex::Options o;
  o.layout.dim_order = {0, 0, 1};
  o.layout.columns = {2, 2};
  FloodIndex index(o);
  const BuildContext ctx = MakeCtx(t);
  EXPECT_FALSE(index.Build(t, ctx).ok());
}

TEST(FloodIndexTest, BuildRejectsCellBudgetOverflow) {
  const Table t = MakeTable(DataShape::kUniform, 100, 3, 2);
  FloodIndex::Options o;
  o.layout = GridLayout::Default(3, 1u << 20);
  o.max_cells = 1024;
  FloodIndex index(o);
  const BuildContext ctx = MakeCtx(t);
  const Status s = index.Build(t, ctx);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(FloodIndexTest, CellTablePartitionsRows) {
  const Table t = MakeTable(DataShape::kClustered, 5000, 3, 3);
  FloodIndex::Options o;
  o.layout = GridLayout::Default(3, 100);
  FloodIndex index(o);
  const BuildContext ctx = MakeCtx(t);
  ASSERT_TRUE(index.Build(t, ctx).ok());
  size_t total = 0;
  for (size_t c = 0; c < index.num_cells(); ++c) total += index.CellSize(c);
  EXPECT_EQ(total, t.num_rows());
}

TEST(FloodIndexTest, RowsWithinCellSortedBySortDim) {
  const Table t = MakeTable(DataShape::kUniform, 4000, 3, 4);
  FloodIndex::Options o;
  o.layout = GridLayout::Default(3, 64);
  FloodIndex index(o);
  const BuildContext ctx = MakeCtx(t);
  ASSERT_TRUE(index.Build(t, ctx).ok());
  const size_t sort_dim = index.layout().sort_dim();
  size_t offset = 0;
  for (size_t c = 0; c < index.num_cells(); ++c) {
    const size_t size = index.CellSize(c);
    Value prev = kValueMin;
    for (size_t i = 0; i < size; ++i) {
      const Value v = index.data().Get(offset + i, sort_dim);
      EXPECT_GE(v, prev);
      prev = v;
    }
    offset += size;
  }
}

class FloodLayoutSweepTest
    : public ::testing::TestWithParam<
          std::tuple<DataShape, size_t /*sort dim*/, uint32_t /*cols*/,
                     bool /*flatten*/>> {};

TEST_P(FloodLayoutSweepTest, MatchesOracleAcrossLayouts) {
  const auto [shape, sort_dim, cols, flatten] = GetParam();
  const size_t d = 3;
  const Table t = MakeTable(shape, 2500, d, 7);

  GridLayout layout;
  for (size_t dim = 0; dim < d; ++dim) {
    if (dim != sort_dim) layout.dim_order.push_back(dim);
  }
  layout.dim_order.push_back(sort_dim);
  layout.use_sort_dim = true;
  layout.columns.assign(d - 1, cols);

  FloodIndex::Options o;
  o.layout = layout;
  o.flatten_mode =
      flatten ? Flattener::Mode::kCdf : Flattener::Mode::kLinear;
  o.plm_min_cell_size = 32;
  FloodIndex index(o);
  const BuildContext ctx = MakeCtx(t);
  ASSERT_TRUE(index.Build(t, ctx).ok());

  for (uint64_t seed = 0; seed < 20; ++seed) {
    const Query q = RandomQuery(t, 3000 + seed);
    const auto oracle = BruteForce(t, q, 0);
    QueryStats stats;
    const AggResult r = ExecuteAggregate(*&index, q, &stats);
    EXPECT_EQ(r.count, oracle.count) << q.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FloodLayoutSweepTest,
    ::testing::Combine(::testing::Values(DataShape::kUniform,
                                         DataShape::kSkewed,
                                         DataShape::kDuplicates),
                       ::testing::Values(size_t{0}, size_t{1}, size_t{2}),
                       ::testing::Values(1u, 3u, 16u),
                       ::testing::Bool()),
    [](const auto& info) {
      return std::string(testing::DataShapeName(std::get<0>(info.param))) +
             "_sort" + std::to_string(std::get<1>(info.param)) + "_c" +
             std::to_string(std::get<2>(info.param)) +
             (std::get<3>(info.param) ? "_cdf" : "_lin");
    });

TEST(FloodIndexTest, RefinementShrinksScansWhenSortDimFiltered) {
  const Table t = MakeTable(DataShape::kUniform, 20'000, 3, 8);
  FloodIndex::Options o;
  o.layout = GridLayout::Default(3, 64);
  FloodIndex index(o);
  const BuildContext ctx = MakeCtx(t);
  ASSERT_TRUE(index.Build(t, ctx).ok());
  const size_t sort_dim = index.layout().sort_dim();

  // Narrow filter on the sort dimension only.
  Query q(3);
  q.SetRange(sort_dim, 0, 100'000);  // ~10% of the value domain.
  QueryStats stats;
  (void)ExecuteAggregate(index, q, &stats);
  // Refinement should stop us from scanning the whole table.
  EXPECT_LT(stats.points_scanned, t.num_rows() / 2);
  EXPECT_EQ(stats.points_matched, BruteForce(t, q, 0).count);
  EXPECT_GT(stats.refine_ns + stats.index_ns, 0);
}

TEST(FloodIndexTest, ExactRangesSkipChecksOnGridFilteredQueries) {
  const Table t = MakeTable(DataShape::kUniform, 30'000, 3, 9);
  FloodIndex::Options o;
  o.layout = GridLayout::Default(3, 256);
  FloodIndex index(o);
  const BuildContext ctx = MakeCtx(t);
  ASSERT_TRUE(index.Build(t, ctx).ok());
  // Wide filter on one grid dimension: interior columns are exact.
  const size_t g0 = index.layout().grid_dim(0);
  Query q(3);
  q.SetRange(g0, 100'000, 900'000);
  QueryStats stats;
  const AggResult r = ExecuteAggregate(index, q, &stats);
  EXPECT_EQ(r.count, BruteForce(t, q, 0).count);
  EXPECT_GT(stats.points_exact, 0u) << "expected exact interior ranges";
}

TEST(FloodIndexTest, CellModelsReduceNothingButStayCorrect) {
  // PLM refinement vs binary search must agree bit-for-bit.
  const Table t = MakeTable(DataShape::kSkewed, 10'000, 3, 10);
  FloodIndex::Options with_models;
  with_models.layout = GridLayout::Default(3, 16);
  with_models.plm_min_cell_size = 16;
  FloodIndex a(with_models);
  FloodIndex::Options without = with_models;
  without.use_cell_models = false;
  FloodIndex b(without);
  const BuildContext ctx = MakeCtx(t);
  ASSERT_TRUE(a.Build(t, ctx).ok());
  ASSERT_TRUE(b.Build(t, ctx).ok());
  EXPECT_GT(a.num_cell_models(), 0u);
  EXPECT_EQ(b.num_cell_models(), 0u);
  for (uint64_t seed = 0; seed < 30; ++seed) {
    const Query q = RandomQuery(t, 7000 + seed);
    EXPECT_EQ(ExecuteAggregate(a, q, nullptr).count,
              ExecuteAggregate(b, q, nullptr).count);
  }
}

TEST(FloodIndexTest, IndexSizeTracksCellModelBudget) {
  const Table t = MakeTable(DataShape::kUniform, 50'000, 3, 11);
  FloodIndex::Options small_delta;
  small_delta.layout = GridLayout::Default(3, 32);
  small_delta.plm_delta = 2.0;
  FloodIndex::Options big_delta = small_delta;
  big_delta.plm_delta = 500.0;
  FloodIndex a(small_delta);
  FloodIndex b(big_delta);
  const BuildContext ctx = MakeCtx(t);
  ASSERT_TRUE(a.Build(t, ctx).ok());
  ASSERT_TRUE(b.Build(t, ctx).ok());
  EXPECT_GT(a.IndexSizeBytes(), b.IndexSizeBytes());
}

// Zone-map task pruning (ROADMAP scan-kernel open item): cells whose
// sort-dimension zone maps are disjoint with the predicate are skipped
// before refinement, accounted in blocks_skipped.
TEST(FloodIndexTest, ZoneMapPruningSkipsDisjointSortRanges) {
  const Table t = MakeTable(DataShape::kUniform, 20'000, 3, 13);
  FloodIndex::Options o;
  o.layout = GridLayout::Default(3, 64);
  FloodIndex index(o);
  const BuildContext ctx = MakeCtx(t);
  ASSERT_TRUE(index.Build(t, ctx).ok());
  const size_t sort_dim = index.layout().sort_dim();

  // Sort range entirely above the value domain: every cell's zone maps
  // are disjoint, so refinement is skipped everywhere.
  Query above(3);
  above.SetRange(sort_dim, 2'000'000, 3'000'000);
  QueryStats stats;
  EXPECT_EQ(ExecuteAggregate(index, above, &stats).count, 0u);
  EXPECT_GT(stats.blocks_skipped, 0u);
  EXPECT_EQ(stats.points_scanned, 0u);

  Query below(3);
  below.SetRange(sort_dim, kValueMin, -5);
  QueryStats below_stats;
  EXPECT_EQ(ExecuteAggregate(index, below, &below_stats).count, 0u);
  EXPECT_GT(below_stats.blocks_skipped, 0u);

  // Pruning never changes answers on ranges that do intersect.
  for (uint64_t seed = 0; seed < 20; ++seed) {
    Query q = RandomQuery(t, 7600 + seed);
    const Value lo = static_cast<Value>(seed * 50'000);
    q.SetRange(sort_dim, lo, lo + 60'000);
    EXPECT_EQ(ExecuteAggregate(index, q, nullptr).count,
              BruteForce(t, q, 0).count)
        << q.ToString();
  }
}

TEST(FloodIndexTest, StatsCountCellsVisited) {
  const Table t = MakeTable(DataShape::kUniform, 10'000, 3, 12);
  FloodIndex::Options o;
  o.layout = GridLayout::Default(3, 100);
  FloodIndex index(o);
  const BuildContext ctx = MakeCtx(t);
  ASSERT_TRUE(index.Build(t, ctx).ok());
  Query q(3);  // Unfiltered: visits every cell.
  QueryStats stats;
  (void)ExecuteAggregate(index, q, &stats);
  EXPECT_EQ(stats.cells_visited, index.num_cells());
  EXPECT_EQ(stats.points_scanned, t.num_rows());
}

}  // namespace
}  // namespace flood
