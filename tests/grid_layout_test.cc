#include <gtest/gtest.h>

#include <numeric>

#include "common/rng.h"
#include "core/grid_layout.h"

namespace flood {
namespace {

/// A random structurally-valid layout over up to 64 dimensions, biased
/// toward the degenerate shapes that bite in practice: 1-column (excluded)
/// grid dims, single-dim layouts, and no-sort-dim grids.
GridLayout RandomLayout(Rng& rng) {
  const size_t nd = static_cast<size_t>(rng.UniformInt(1, 64));
  GridLayout l;
  l.dim_order.resize(nd);
  std::iota(l.dim_order.begin(), l.dim_order.end(), size_t{0});
  for (size_t i = nd; i-- > 1;) {  // Fisher-Yates with the seeded Rng.
    const size_t j =
        static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(i)));
    std::swap(l.dim_order[i], l.dim_order[j]);
  }
  l.use_sort_dim = nd > 1 && rng.NextDouble() < 0.8;
  l.columns.resize(l.NumGridDims());
  for (uint32_t& c : l.columns) {
    const double roll = rng.NextDouble();
    if (roll < 0.3) {
      c = 1;  // Degenerate 1-cell dimension.
    } else if (roll < 0.95) {
      c = static_cast<uint32_t>(rng.UniformInt(2, 1'000'000));
    } else {
      c = 0xFFFFFFFFu;  // Extreme column count still round-trips.
    }
  }
  return l;
}

TEST(GridLayoutTest, DefaultLayoutValid) {
  const GridLayout l = GridLayout::Default(4, 1000);
  EXPECT_TRUE(l.IsValid(4));
  EXPECT_TRUE(l.use_sort_dim);
  EXPECT_EQ(l.NumGridDims(), 3u);
  EXPECT_EQ(l.sort_dim(), 3u);
  // Target ~1000 cells split across 3 dims -> 10 columns each.
  EXPECT_EQ(l.columns.size(), 3u);
  EXPECT_NEAR(static_cast<double>(l.NumCells()), 1000.0, 400.0);
}

TEST(GridLayoutTest, SingleDimDefault) {
  const GridLayout l = GridLayout::Default(1, 100);
  EXPECT_TRUE(l.IsValid(1));
  EXPECT_FALSE(l.use_sort_dim);  // One dim: grid only.
  EXPECT_EQ(l.NumGridDims(), 1u);
}

TEST(GridLayoutTest, NumCellsIsProduct) {
  GridLayout l;
  l.dim_order = {2, 0, 1};
  l.columns = {4, 5};
  l.use_sort_dim = true;
  EXPECT_TRUE(l.IsValid(3));
  EXPECT_EQ(l.NumCells(), 20u);
  EXPECT_EQ(l.sort_dim(), 1u);
  EXPECT_EQ(l.grid_dim(0), 2u);
}

TEST(GridLayoutTest, InvalidLayouts) {
  GridLayout l;
  l.dim_order = {0, 1};
  l.columns = {3};
  l.use_sort_dim = true;
  EXPECT_TRUE(l.IsValid(2));
  EXPECT_FALSE(l.IsValid(3));  // Wrong dim count.

  GridLayout dup;
  dup.dim_order = {0, 0};
  dup.columns = {3};
  EXPECT_FALSE(dup.IsValid(2));  // Not a permutation.

  GridLayout zero;
  zero.dim_order = {0, 1};
  zero.columns = {0};
  EXPECT_FALSE(zero.IsValid(2));  // Zero columns.

  GridLayout wrong_cols;
  wrong_cols.dim_order = {0, 1};
  wrong_cols.columns = {2, 2};
  wrong_cols.use_sort_dim = true;
  EXPECT_FALSE(wrong_cols.IsValid(2));  // Columns must cover grid dims only.
  wrong_cols.use_sort_dim = false;
  EXPECT_TRUE(wrong_cols.IsValid(2));
}

TEST(GridLayoutSerializeTest, RoundTrip) {
  GridLayout l;
  l.dim_order = {2, 0, 3, 1};
  l.columns = {4, 1, 97};
  l.use_sort_dim = true;
  const std::string text = l.Serialize();
  const StatusOr<GridLayout> parsed = GridLayout::Parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->dim_order, l.dim_order);
  EXPECT_EQ(parsed->columns, l.columns);
  EXPECT_EQ(parsed->use_sort_dim, l.use_sort_dim);
}

TEST(GridLayoutSerializeTest, RoundTripNoSortDim) {
  GridLayout l;
  l.dim_order = {1, 0};
  l.columns = {8, 2};
  l.use_sort_dim = false;
  const StatusOr<GridLayout> parsed = GridLayout::Parse(l.Serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(parsed->use_sort_dim);
  EXPECT_EQ(parsed->NumCells(), 16u);
}

TEST(GridLayoutSerializeTest, RejectsMalformedInput) {
  EXPECT_FALSE(GridLayout::Parse("").ok());
  EXPECT_FALSE(GridLayout::Parse("order=0,1;cols=2").ok());  // No sort.
  EXPECT_FALSE(GridLayout::Parse("order=0,0;cols=2;sort=1").ok());  // Dup.
  EXPECT_FALSE(GridLayout::Parse("order=0,1;cols=2;sort=7").ok());
  EXPECT_FALSE(GridLayout::Parse("order=0,x;cols=2;sort=1").ok());
  EXPECT_FALSE(GridLayout::Parse("bogus=1;order=0;cols=1;sort=0").ok());
  EXPECT_FALSE(GridLayout::Parse("order=0,1;cols=0,2;sort=0").ok());
}

// Snapshots embed Serialize() output, so the round trip is load-bearing:
// Parse(Serialize(L)) must reproduce L exactly for every valid layout,
// including degenerate 1-cell dimensions and the 64-dim maximum.
TEST(GridLayoutSerializeTest, RandomizedRoundTripProperty) {
  Rng rng(20260731);
  for (int iter = 0; iter < 500; ++iter) {
    const GridLayout l = RandomLayout(rng);
    ASSERT_TRUE(l.IsValid(l.num_dims())) << l.ToString();
    const StatusOr<GridLayout> parsed = GridLayout::Parse(l.Serialize());
    ASSERT_TRUE(parsed.ok())
        << l.Serialize() << " -> " << parsed.status().ToString();
    EXPECT_EQ(parsed->dim_order, l.dim_order);
    EXPECT_EQ(parsed->columns, l.columns);
    EXPECT_EQ(parsed->use_sort_dim, l.use_sort_dim);
  }
}

TEST(GridLayoutSerializeTest, MaxDimLayoutRoundTrips) {
  GridLayout l;
  l.dim_order.resize(64);
  std::iota(l.dim_order.begin(), l.dim_order.end(), size_t{0});
  l.use_sort_dim = true;
  l.columns.assign(63, 1);  // All-degenerate grid: a single cell.
  ASSERT_TRUE(l.IsValid(64));
  EXPECT_EQ(l.NumCells(), 1u);
  const StatusOr<GridLayout> parsed = GridLayout::Parse(l.Serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->dim_order, l.dim_order);
  EXPECT_EQ(parsed->columns, l.columns);
}

// Truncated serializations must never parse: the trailing "sort=" field
// means any strict prefix is structurally incomplete.
TEST(GridLayoutSerializeTest, TruncatedInputsAreRejected) {
  Rng rng(777);
  for (int iter = 0; iter < 20; ++iter) {
    const std::string text = RandomLayout(rng).Serialize();
    for (size_t len = 0; len < text.size(); ++len) {
      const StatusOr<GridLayout> parsed =
          GridLayout::Parse(text.substr(0, len));
      EXPECT_FALSE(parsed.ok())
          << "prefix of length " << len << " of: " << text;
    }
  }
}

// Fuzz-ish byte mutations: Parse must never crash, and whatever it accepts
// must be structurally valid (a flipped digit may legitimately yield a
// different-but-valid layout; garbage must be rejected).
TEST(GridLayoutSerializeTest, MutatedInputsRejectedOrStillValid) {
  Rng rng(778);
  for (int iter = 0; iter < 200; ++iter) {
    std::string text = RandomLayout(rng).Serialize();
    const size_t mutations = 1 + static_cast<size_t>(rng.UniformInt(0, 3));
    for (size_t m = 0; m < mutations; ++m) {
      const size_t pos = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(text.size()) - 1));
      text[pos] = static_cast<char>(rng.UniformInt(32, 126));
    }
    const StatusOr<GridLayout> parsed = GridLayout::Parse(text);
    if (parsed.ok()) {
      EXPECT_TRUE(parsed->IsValid(parsed->num_dims())) << text;
    }
  }
}

TEST(GridLayoutTest, ToStringMentionsDims) {
  GridLayout l;
  l.dim_order = {1, 0};
  l.columns = {8};
  l.use_sort_dim = true;
  const std::string s = l.ToString();
  EXPECT_NE(s.find("d1:8"), std::string::npos);
  EXPECT_NE(s.find("sort=d0"), std::string::npos);
}

}  // namespace
}  // namespace flood
