#include <gtest/gtest.h>

#include "core/grid_layout.h"

namespace flood {
namespace {

TEST(GridLayoutTest, DefaultLayoutValid) {
  const GridLayout l = GridLayout::Default(4, 1000);
  EXPECT_TRUE(l.IsValid(4));
  EXPECT_TRUE(l.use_sort_dim);
  EXPECT_EQ(l.NumGridDims(), 3u);
  EXPECT_EQ(l.sort_dim(), 3u);
  // Target ~1000 cells split across 3 dims -> 10 columns each.
  EXPECT_EQ(l.columns.size(), 3u);
  EXPECT_NEAR(static_cast<double>(l.NumCells()), 1000.0, 400.0);
}

TEST(GridLayoutTest, SingleDimDefault) {
  const GridLayout l = GridLayout::Default(1, 100);
  EXPECT_TRUE(l.IsValid(1));
  EXPECT_FALSE(l.use_sort_dim);  // One dim: grid only.
  EXPECT_EQ(l.NumGridDims(), 1u);
}

TEST(GridLayoutTest, NumCellsIsProduct) {
  GridLayout l;
  l.dim_order = {2, 0, 1};
  l.columns = {4, 5};
  l.use_sort_dim = true;
  EXPECT_TRUE(l.IsValid(3));
  EXPECT_EQ(l.NumCells(), 20u);
  EXPECT_EQ(l.sort_dim(), 1u);
  EXPECT_EQ(l.grid_dim(0), 2u);
}

TEST(GridLayoutTest, InvalidLayouts) {
  GridLayout l;
  l.dim_order = {0, 1};
  l.columns = {3};
  l.use_sort_dim = true;
  EXPECT_TRUE(l.IsValid(2));
  EXPECT_FALSE(l.IsValid(3));  // Wrong dim count.

  GridLayout dup;
  dup.dim_order = {0, 0};
  dup.columns = {3};
  EXPECT_FALSE(dup.IsValid(2));  // Not a permutation.

  GridLayout zero;
  zero.dim_order = {0, 1};
  zero.columns = {0};
  EXPECT_FALSE(zero.IsValid(2));  // Zero columns.

  GridLayout wrong_cols;
  wrong_cols.dim_order = {0, 1};
  wrong_cols.columns = {2, 2};
  wrong_cols.use_sort_dim = true;
  EXPECT_FALSE(wrong_cols.IsValid(2));  // Columns must cover grid dims only.
  wrong_cols.use_sort_dim = false;
  EXPECT_TRUE(wrong_cols.IsValid(2));
}

TEST(GridLayoutSerializeTest, RoundTrip) {
  GridLayout l;
  l.dim_order = {2, 0, 3, 1};
  l.columns = {4, 1, 97};
  l.use_sort_dim = true;
  const std::string text = l.Serialize();
  const StatusOr<GridLayout> parsed = GridLayout::Parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->dim_order, l.dim_order);
  EXPECT_EQ(parsed->columns, l.columns);
  EXPECT_EQ(parsed->use_sort_dim, l.use_sort_dim);
}

TEST(GridLayoutSerializeTest, RoundTripNoSortDim) {
  GridLayout l;
  l.dim_order = {1, 0};
  l.columns = {8, 2};
  l.use_sort_dim = false;
  const StatusOr<GridLayout> parsed = GridLayout::Parse(l.Serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(parsed->use_sort_dim);
  EXPECT_EQ(parsed->NumCells(), 16u);
}

TEST(GridLayoutSerializeTest, RejectsMalformedInput) {
  EXPECT_FALSE(GridLayout::Parse("").ok());
  EXPECT_FALSE(GridLayout::Parse("order=0,1;cols=2").ok());  // No sort.
  EXPECT_FALSE(GridLayout::Parse("order=0,0;cols=2;sort=1").ok());  // Dup.
  EXPECT_FALSE(GridLayout::Parse("order=0,1;cols=2;sort=7").ok());
  EXPECT_FALSE(GridLayout::Parse("order=0,x;cols=2;sort=1").ok());
  EXPECT_FALSE(GridLayout::Parse("bogus=1;order=0;cols=1;sort=0").ok());
  EXPECT_FALSE(GridLayout::Parse("order=0,1;cols=0,2;sort=0").ok());
}

TEST(GridLayoutTest, ToStringMentionsDims) {
  GridLayout l;
  l.dim_order = {1, 0};
  l.columns = {8};
  l.use_sort_dim = true;
  const std::string s = l.ToString();
  EXPECT_NE(s.find("d1:8"), std::string::npos);
  EXPECT_NE(s.find("sort=d0"), std::string::npos);
}

}  // namespace
}  // namespace flood
