// Behavioral and regression tests that go beyond result correctness:
// physical-layout effects (range merging, dimension exclusion), duplicate
// handling at page boundaries, and determinism guarantees.

#include <gtest/gtest.h>

#include "api/index_registry.h"
#include "core/flood_index.h"
#include "core/layout_optimizer.h"
#include "query/executor.h"
#include "tests/test_util.h"

namespace flood {
namespace {

using testing::BruteForce;
using testing::DataShape;
using testing::MakeTable;
using testing::RandomQuery;

BuildContext Ctx(const Table& t, uint64_t seed = 5) {
  BuildContext ctx;
  ctx.sample = DataSample::FromTable(t, 1000, seed);
  return ctx;
}

std::unique_ptr<MultiDimIndex> MakeRegistered(const std::string& name,
                                              const IndexOptions& opts = {}) {
  StatusOr<std::unique_ptr<MultiDimIndex>> index =
      IndexRegistry::Global().Create(name, opts);
  EXPECT_TRUE(index.ok()) << index.status().ToString();
  return index.ok() ? std::move(*index) : nullptr;
}

// Regression: duplicate Z-codes spanning page boundaries used to make the
// Z-order index start scanning after the first matching page.
TEST(ZOrderRegressionTest, DuplicateCodesAcrossPages) {
  // 90% of rows share one exact point; pages are tiny so the duplicate
  // z-code spans many pages.
  Rng rng(17);
  const size_t n = 4000;
  std::vector<Value> a(n);
  std::vector<Value> b(n);
  for (size_t i = 0; i < n; ++i) {
    if (rng.NextDouble() < 0.9) {
      a[i] = 500;
      b[i] = 600;
    } else {
      a[i] = rng.UniformInt(0, 1000);
      b[i] = rng.UniformInt(0, 1000);
    }
  }
  StatusOr<Table> t = Table::FromColumns({a, b});
  ASSERT_TRUE(t.ok());
  std::unique_ptr<MultiDimIndex> index =
      MakeRegistered("zorder", IndexOptions().SetInt("page_size", 64));
  const BuildContext ctx = Ctx(*t);
  ASSERT_TRUE(index->Build(*t, ctx).ok());
  Query q = QueryBuilder(2).Equals(0, 500).Equals(1, 600).Build();
  EXPECT_EQ(ExecuteAggregate(*index, q, nullptr).count,
            BruteForce(*t, q, 0).count);
}

TEST(ZOrderVsUbTreeTest, IdenticalResultsAcrossManyQueries) {
  const Table t = MakeTable(DataShape::kClustered, 8000, 3, 18);
  const BuildContext ctx = Ctx(t);
  std::unique_ptr<MultiDimIndex> z = MakeRegistered("zorder");
  std::unique_ptr<MultiDimIndex> ub = MakeRegistered("ubtree");
  ASSERT_TRUE(z->Build(t, ctx).ok());
  ASSERT_TRUE(ub->Build(t, ctx).ok());
  for (uint64_t seed = 0; seed < 40; ++seed) {
    const Query q = RandomQuery(t, 8000 + seed);
    EXPECT_EQ(ExecuteAggregate(*z, q, nullptr).count,
              ExecuteAggregate(*ub, q, nullptr).count)
        << q.ToString();
  }
}

// Merging: with no sort-dimension filter, physically-adjacent interior
// cells must coalesce into long runs (fewer ranges than cells).
TEST(FloodBehaviorTest, InteriorCellsMergeIntoRuns) {
  const Table t = MakeTable(DataShape::kUniform, 30'000, 3, 19);
  FloodIndex::Options o;
  o.layout.dim_order = {0, 1, 2};  // Grid over d0,d1; sort d2.
  o.layout.columns = {16, 16};
  FloodIndex index(o);
  const BuildContext ctx = Ctx(t);
  ASSERT_TRUE(index.Build(t, ctx).ok());

  // Filter only d0: for each of its ~k intersecting columns, the whole
  // d1 row of 16 cells should merge into one run.
  Query q(3);
  q.SetRange(0, 200'000, 700'000);
  QueryStats stats;
  (void)ExecuteAggregate(index, q, &stats);
  EXPECT_GT(stats.cells_visited, stats.ranges_scanned * 4)
      << "adjacent cells should merge when no refinement applies";

  // Filter d2 (sort): per-cell refinement forbids merging.
  Query q2(3);
  q2.SetRange(2, 0, 500'000);
  QueryStats stats2;
  (void)ExecuteAggregate(index, q2, &stats2);
  EXPECT_GE(stats2.ranges_scanned + 2, stats2.cells_visited)
      << "refined cells scan per-cell ranges";
}

// A grid dimension with one column behaves exactly like an unindexed
// dimension: filters on it are per-point checks.
TEST(FloodBehaviorTest, SingleColumnDimensionActsExcluded) {
  const Table t = MakeTable(DataShape::kUniform, 10'000, 3, 20);
  FloodIndex::Options o;
  o.layout.dim_order = {0, 1, 2};
  o.layout.columns = {1, 32};  // d0 excluded, d1 gridded, d2 sorted.
  FloodIndex index(o);
  const BuildContext ctx = Ctx(t);
  ASSERT_TRUE(index.Build(t, ctx).ok());
  Query q(3);
  q.SetRange(0, 100'000, 200'000);  // Only the excluded dim.
  QueryStats stats;
  const AggResult r = ExecuteAggregate(index, q, &stats);
  EXPECT_EQ(r.count, BruteForce(t, q, 0).count);
  // Every row must be scanned (the filter can't prune cells).
  EXPECT_EQ(stats.points_scanned, t.num_rows());
}

TEST(FloodBehaviorTest, FlatteningBalancesCellSizes) {
  const Table t = MakeTable(DataShape::kSkewed, 40'000, 2, 21);
  FloodIndex::Options flat;
  flat.layout.dim_order = {0, 1};
  flat.layout.columns = {64};
  flat.flatten_mode = Flattener::Mode::kCdf;
  FloodIndex::Options lin = flat;
  lin.flatten_mode = Flattener::Mode::kLinear;
  FloodIndex a(flat);
  FloodIndex b(lin);
  const BuildContext ctx = Ctx(t);
  ASSERT_TRUE(a.Build(t, ctx).ok());
  ASSERT_TRUE(b.Build(t, ctx).ok());
  auto max_cell = [](const FloodIndex& idx) {
    size_t mx = 0;
    for (size_t c = 0; c < idx.num_cells(); ++c) {
      mx = std::max(mx, idx.CellSize(c));
    }
    return mx;
  };
  // On lognormal data, equal-width columns pile everything into a few
  // cells; flattened columns stay near the even share.
  EXPECT_LT(max_cell(a), max_cell(b) / 4);
}

TEST(OptimizerDeterminismTest, SameSeedSameLayout) {
  const Table t = MakeTable(DataShape::kClustered, 20'000, 4, 22);
  Workload w;
  for (int i = 0; i < 30; ++i) w.Add(RandomQuery(t, 400 + i));
  const CostModel model = CostModel::Default();
  LayoutOptimizer::Options opts;
  opts.data_sample_size = 5000;
  opts.query_sample_size = 20;
  opts.max_cells = 1 << 12;
  LayoutOptimizer optimizer(&model, opts);
  const auto a = optimizer.Optimize(t, w);
  const auto b = optimizer.Optimize(t, w);
  EXPECT_EQ(a.layout.dim_order, b.layout.dim_order);
  EXPECT_EQ(a.layout.columns, b.layout.columns);
}

TEST(FloodBuildDeterminismTest, SameOptionsSameStorageOrder) {
  const Table t = MakeTable(DataShape::kDuplicates, 5000, 3, 23);
  FloodIndex::Options o;
  o.layout = GridLayout::Default(3, 64);
  FloodIndex a(o);
  FloodIndex b(o);
  const BuildContext ctx = Ctx(t);
  ASSERT_TRUE(a.Build(t, ctx).ok());
  ASSERT_TRUE(b.Build(t, ctx).ok());
  for (RowId r = 0; r < t.num_rows(); r += 97) {
    for (size_t d = 0; d < 3; ++d) {
      ASSERT_EQ(a.data().Get(r, d), b.data().Get(r, d));
    }
  }
}

// Exactness accounting must line up: exact points never exceed scanned,
// and fully-covered queries are answered almost entirely exactly.
TEST(FloodBehaviorTest, ExactnessAccounting) {
  const Table t = MakeTable(DataShape::kUniform, 20'000, 3, 24);
  FloodIndex::Options o;
  o.layout = GridLayout::Default(3, 256);
  FloodIndex index(o);
  const BuildContext ctx = Ctx(t);
  ASSERT_TRUE(index.Build(t, ctx).ok());
  Query q(3);  // Unfiltered.
  QueryStats stats;
  (void)ExecuteAggregate(index, q, &stats);
  EXPECT_EQ(stats.points_exact, stats.points_scanned);
  EXPECT_EQ(stats.points_exact, t.num_rows());
}

// The §7.1 optimization ablation flags change performance counters but
// never results.
TEST(FloodBehaviorTest, AblationFlagsPreserveResults) {
  const Table t = MakeTable(DataShape::kClustered, 8000, 3, 26);
  const BuildContext ctx = Ctx(t);
  FloodIndex::Options base;
  base.layout = GridLayout::Default(3, 64);
  FloodIndex full(base);
  ASSERT_TRUE(full.Build(t, ctx).ok());

  for (const auto& [exact, merge] :
       std::vector<std::pair<bool, bool>>{{false, true},
                                          {true, false},
                                          {false, false}}) {
    FloodIndex::Options o = base;
    o.enable_exact_ranges = exact;
    o.enable_run_merging = merge;
    FloodIndex variant(o);
    ASSERT_TRUE(variant.Build(t, ctx).ok());
    for (uint64_t seed = 0; seed < 20; ++seed) {
      const Query q = RandomQuery(t, 9000 + seed);
      QueryStats full_stats;
      QueryStats var_stats;
      const AggResult a = ExecuteAggregate(full, q, &full_stats);
      const AggResult b = ExecuteAggregate(variant, q, &var_stats);
      EXPECT_EQ(a.count, b.count)
          << "exact=" << exact << " merge=" << merge << " " << q.ToString();
      // Disabling exact ranges means nothing scans check-free.
      if (!exact && q.NumFiltered() > 0) {
        EXPECT_EQ(var_stats.points_exact, 0u);
      }
      if (!merge) {
        EXPECT_GE(var_stats.ranges_scanned, full_stats.ranges_scanned);
      }
    }
  }
}

// SUM through prefix sums must agree with SUM through per-row access on
// queries dominated by exact ranges.
TEST(FloodBehaviorTest, PrefixSumPathMatchesRowPath) {
  const Table t = MakeTable(DataShape::kUniform, 20'000, 3, 25);
  Workload w;
  Query q = QueryBuilder(3).Range(0, 100'000, 900'000).Sum(1).Build();
  w.Add(q);
  BuildContext ctx;
  ctx.workload = &w;
  ctx.sample = DataSample::FromTable(t, 1000, 3);
  FloodIndex::Options o;
  o.layout.dim_order = {0, 1, 2};
  o.layout.columns = {64, 4};
  FloodIndex index(o);
  ASSERT_TRUE(index.Build(t, ctx).ok());
  ASSERT_NE(index.prefix_sums(1), nullptr);
  const auto oracle = BruteForce(t, q, 1);
  QueryStats stats;
  const AggResult r = ExecuteAggregate(index, q, &stats);
  EXPECT_EQ(r.sum, oracle.sum);
  EXPECT_GT(stats.points_exact, 0u);
}

}  // namespace
}  // namespace flood
