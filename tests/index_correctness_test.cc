#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "api/index_registry.h"
#include "core/flood_index.h"
#include "query/executor.h"
#include "tests/test_util.h"

namespace flood {
namespace {

using testing::BruteForce;
using testing::DataShape;
using testing::DataShapeName;
using testing::MakeTable;
using testing::OracleResult;
using testing::RandomQuery;

enum class IndexKind {
  kFullScan,
  kClustered,
  kGridFile,
  kZOrder,
  kUbTree,
  kHyperoctree,
  kKdTree,
  kRTree,
  kFloodFlattened,
  kFloodLinear,
  kFloodNoModels,
  kFloodSimpleGrid,  // No sort dim (histogram ablation).
};

const char* IndexKindName(IndexKind k) {
  switch (k) {
    case IndexKind::kFullScan:
      return "FullScan";
    case IndexKind::kClustered:
      return "Clustered";
    case IndexKind::kGridFile:
      return "GridFile";
    case IndexKind::kZOrder:
      return "ZOrder";
    case IndexKind::kUbTree:
      return "UbTree";
    case IndexKind::kHyperoctree:
      return "Hyperoctree";
    case IndexKind::kKdTree:
      return "KdTree";
    case IndexKind::kRTree:
      return "RTree";
    case IndexKind::kFloodFlattened:
      return "FloodFlattened";
    case IndexKind::kFloodLinear:
      return "FloodLinear";
    case IndexKind::kFloodNoModels:
      return "FloodNoModels";
    case IndexKind::kFloodSimpleGrid:
      return "FloodSimpleGrid";
  }
  return "?";
}

/// Everything except the simple-grid ablation (whose layout surgery the
/// options map can't express) is built through the IndexRegistry, so this
/// suite also exercises the factories' option plumbing.
std::unique_ptr<MultiDimIndex> MakeIndex(IndexKind kind, size_t num_dims) {
  std::string name;
  IndexOptions opts;
  // The Flood variants pin the uniform 64-cell default layout the oracle
  // comparisons were written against.
  opts.SetInt("target_cells", 64).SetBool("learn_layout", false);
  switch (kind) {
    case IndexKind::kFullScan:
      name = "full_scan";
      break;
    case IndexKind::kClustered:
      name = "clustered";
      break;
    case IndexKind::kGridFile:
      name = "grid_file";
      opts.SetInt("page_size", 256);
      break;
    case IndexKind::kZOrder:
      name = "zorder";
      opts.SetInt("page_size", 128);
      break;
    case IndexKind::kUbTree:
      name = "ubtree";
      break;
    case IndexKind::kHyperoctree:
      name = "octree";
      opts.SetInt("page_size", 128);
      break;
    case IndexKind::kKdTree:
      name = "kdtree";
      opts.SetInt("page_size", 128);
      break;
    case IndexKind::kRTree:
      name = "rtree";
      opts.SetInt("leaf_capacity", 128);
      break;
    case IndexKind::kFloodFlattened:
      name = "flood";
      break;
    case IndexKind::kFloodLinear:
      name = "flood";
      opts.Set("flatten_mode", "linear");
      break;
    case IndexKind::kFloodNoModels:
      name = "flood";
      opts.SetBool("use_cell_models", false);
      break;
    case IndexKind::kFloodSimpleGrid: {
      FloodIndex::Options o;
      o.layout = GridLayout::Default(num_dims, 64);
      o.layout.use_sort_dim = false;
      o.layout.columns.push_back(2);  // Grid over all dims.
      return std::make_unique<FloodIndex>(o);
    }
  }
  StatusOr<std::unique_ptr<MultiDimIndex>> index =
      IndexRegistry::Global().Create(name, opts);
  EXPECT_TRUE(index.ok()) << index.status().ToString();
  return index.ok() ? std::move(*index) : nullptr;
}

class IndexCorrectnessTest
    : public ::testing::TestWithParam<std::tuple<IndexKind, DataShape>> {};

TEST_P(IndexCorrectnessTest, AggregatesMatchBruteForceOracle) {
  const auto [kind, shape] = GetParam();
  const size_t n = 3000;
  const size_t d = 4;
  const Table table = MakeTable(shape, n, d, 1234);

  // Training workload (used for selectivity hints + prefix sums).
  Workload hint;
  for (int i = 0; i < 10; ++i) {
    Query q = RandomQuery(table, 900 + i);
    q.set_agg({AggSpec::Kind::kSum, 2});
    hint.Add(q);
  }
  BuildContext ctx;
  ctx.workload = &hint;
  ctx.sample = DataSample::FromTable(table, 1000, 77);

  std::unique_ptr<MultiDimIndex> index = MakeIndex(kind, d);
  ASSERT_NE(index, nullptr);
  const Status built = index->Build(table, ctx);
  ASSERT_TRUE(built.ok()) << built.ToString();

  // The index's own storage order must be a permutation of the table.
  ASSERT_EQ(index->data().num_rows(), n);

  for (uint64_t seed = 0; seed < 25; ++seed) {
    Query q = RandomQuery(table, 555 + seed * 13);
    const OracleResult oracle = BruteForce(table, q, /*sum_dim=*/2);

    q.set_agg({AggSpec::Kind::kCount, 0});
    QueryStats count_stats;
    const AggResult count = ExecuteAggregate(*index, q, &count_stats);
    EXPECT_EQ(count.count, oracle.count)
        << IndexKindName(kind) << " COUNT mismatch, query " << q.ToString();
    EXPECT_EQ(count_stats.points_matched, oracle.count);
    EXPECT_GE(count_stats.points_scanned, count_stats.points_matched);

    q.set_agg({AggSpec::Kind::kSum, 2});
    const AggResult sum = ExecuteAggregate(*index, q, nullptr);
    EXPECT_EQ(sum.sum, oracle.sum)
        << IndexKindName(kind) << " SUM mismatch, query " << q.ToString();

    // Collect must return exactly the matching rows (as a set of values).
    CollectVisitor collect;
    index->Execute(q, collect, nullptr);
    EXPECT_EQ(collect.rows().size(), oracle.count);
    for (RowId r : collect.rows()) {
      EXPECT_TRUE(q.Matches(index->data(), r));
    }
  }
}

TEST_P(IndexCorrectnessTest, UnfilteredQueryMatchesEverything) {
  const auto [kind, shape] = GetParam();
  const size_t n = 500;
  const Table table = MakeTable(shape, n, 3, 99);
  BuildContext ctx;
  ctx.sample = DataSample::FromTable(table, 200, 1);
  std::unique_ptr<MultiDimIndex> index = MakeIndex(kind, 3);
  ASSERT_TRUE(index->Build(table, ctx).ok());
  const Query q(3);
  const AggResult r = ExecuteAggregate(*index, q, nullptr);
  EXPECT_EQ(r.count, n);
}

TEST_P(IndexCorrectnessTest, EmptyRangeMatchesNothing) {
  const auto [kind, shape] = GetParam();
  const Table table = MakeTable(shape, 400, 3, 101);
  BuildContext ctx;
  ctx.sample = DataSample::FromTable(table, 200, 2);
  std::unique_ptr<MultiDimIndex> index = MakeIndex(kind, 3);
  ASSERT_TRUE(index->Build(table, ctx).ok());
  Query q(3);
  q.SetRange(1, 100, 50);  // Inverted: empty.
  const AggResult r = ExecuteAggregate(*index, q, nullptr);
  EXPECT_EQ(r.count, 0u);
}

TEST_P(IndexCorrectnessTest, OutOfDomainRangeMatchesNothing) {
  const auto [kind, shape] = GetParam();
  const Table table = MakeTable(shape, 400, 3, 103);
  BuildContext ctx;
  ctx.sample = DataSample::FromTable(table, 200, 3);
  std::unique_ptr<MultiDimIndex> index = MakeIndex(kind, 3);
  ASSERT_TRUE(index->Build(table, ctx).ok());
  Query q(3);
  q.SetRange(0, table.max_value(0) + 1, kValueMax);
  EXPECT_EQ(ExecuteAggregate(*index, q, nullptr).count, 0u);
  Query q2(3);
  q2.SetRange(0, kValueMin, table.min_value(0) - 1);
  EXPECT_EQ(ExecuteAggregate(*index, q2, nullptr).count, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllIndexesAllShapes, IndexCorrectnessTest,
    ::testing::Combine(
        ::testing::Values(IndexKind::kFullScan, IndexKind::kClustered,
                          IndexKind::kGridFile, IndexKind::kZOrder,
                          IndexKind::kUbTree, IndexKind::kHyperoctree,
                          IndexKind::kKdTree, IndexKind::kRTree,
                          IndexKind::kFloodFlattened, IndexKind::kFloodLinear,
                          IndexKind::kFloodNoModels,
                          IndexKind::kFloodSimpleGrid),
        ::testing::Values(DataShape::kUniform, DataShape::kSkewed,
                          DataShape::kClustered, DataShape::kDuplicates,
                          DataShape::kCorrelated)),
    [](const auto& info) {
      return std::string(IndexKindName(std::get<0>(info.param))) + "_" +
             DataShapeName(std::get<1>(info.param));
    });

TEST(IndexEdgeCaseTest, SinglePointTable) {
  StatusOr<Table> t = Table::FromColumns({{42}, {7}});
  ASSERT_TRUE(t.ok());
  BuildContext ctx;
  ctx.sample = DataSample::FromTable(*t, 1, 1);
  for (IndexKind kind :
       {IndexKind::kFullScan, IndexKind::kClustered, IndexKind::kZOrder,
        IndexKind::kUbTree, IndexKind::kHyperoctree, IndexKind::kKdTree,
        IndexKind::kRTree, IndexKind::kGridFile,
        IndexKind::kFloodFlattened}) {
    std::unique_ptr<MultiDimIndex> index = MakeIndex(kind, 2);
    ASSERT_TRUE(index->Build(*t, ctx).ok()) << IndexKindName(kind);
    Query hit = QueryBuilder(2).Range(0, 40, 45).Build();
    EXPECT_EQ(ExecuteAggregate(*index, hit, nullptr).count, 1u)
        << IndexKindName(kind);
    Query miss = QueryBuilder(2).Range(0, 43, 45).Build();
    EXPECT_EQ(ExecuteAggregate(*index, miss, nullptr).count, 0u)
        << IndexKindName(kind);
  }
}

TEST(IndexEdgeCaseTest, AllRowsIdentical) {
  std::vector<Value> col(300, 5);
  StatusOr<Table> t = Table::FromColumns({col, col, col});
  ASSERT_TRUE(t.ok());
  BuildContext ctx;
  ctx.sample = DataSample::FromTable(*t, 100, 1);
  for (IndexKind kind :
       {IndexKind::kFullScan, IndexKind::kClustered, IndexKind::kZOrder,
        IndexKind::kUbTree, IndexKind::kHyperoctree, IndexKind::kKdTree,
        IndexKind::kRTree, IndexKind::kGridFile,
        IndexKind::kFloodFlattened}) {
    std::unique_ptr<MultiDimIndex> index = MakeIndex(kind, 3);
    ASSERT_TRUE(index->Build(*t, ctx).ok()) << IndexKindName(kind);
    Query q = QueryBuilder(3).Equals(0, 5).Equals(2, 5).Build();
    EXPECT_EQ(ExecuteAggregate(*index, q, nullptr).count, 300u)
        << IndexKindName(kind);
    Query miss = QueryBuilder(3).Equals(1, 6).Build();
    EXPECT_EQ(ExecuteAggregate(*index, miss, nullptr).count, 0u)
        << IndexKindName(kind);
  }
}

TEST(IndexEdgeCaseTest, SingleDimensionTable) {
  Rng rng(7);
  StatusOr<Table> t =
      Table::FromColumns({UniformColumn(2000, 0, 10'000, rng)});
  ASSERT_TRUE(t.ok());
  BuildContext ctx;
  ctx.sample = DataSample::FromTable(*t, 500, 1);
  for (IndexKind kind :
       {IndexKind::kFullScan, IndexKind::kClustered, IndexKind::kZOrder,
        IndexKind::kHyperoctree, IndexKind::kKdTree,
        IndexKind::kFloodFlattened}) {
    std::unique_ptr<MultiDimIndex> index = MakeIndex(kind, 1);
    ASSERT_TRUE(index->Build(*t, ctx).ok()) << IndexKindName(kind);
    Query q = QueryBuilder(1).Range(0, 1000, 3000).Build();
    const auto oracle = BruteForce(*t, q, 0);
    EXPECT_EQ(ExecuteAggregate(*index, q, nullptr).count, oracle.count)
        << IndexKindName(kind);
  }
}

}  // namespace
}  // namespace flood
