#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/knn.h"
#include "tests/test_util.h"

namespace flood {
namespace {

using testing::DataShape;
using testing::MakeTable;

std::vector<double> BruteForceKnnDistances(const Table& t,
                                           const std::vector<Value>& point,
                                           const std::vector<size_t>& dims,
                                           size_t k) {
  std::vector<double> d2;
  d2.reserve(t.num_rows());
  for (RowId r = 0; r < t.num_rows(); ++r) {
    double total = 0;
    for (size_t dim : dims) {
      const double diff = static_cast<double>(point[dim]) -
                          static_cast<double>(t.Get(r, dim));
      total += diff * diff;
    }
    d2.push_back(total);
  }
  std::sort(d2.begin(), d2.end());
  d2.resize(std::min(k, d2.size()));
  for (auto& v : d2) v = std::sqrt(v);
  return d2;
}

class KnnTest
    : public ::testing::TestWithParam<std::tuple<DataShape, size_t>> {};

TEST_P(KnnTest, MatchesBruteForceDistances) {
  const auto [shape, k] = GetParam();
  const Table t = MakeTable(shape, 4000, 3, 31);
  FloodIndex::Options o;
  o.layout.dim_order = {0, 1, 2};
  o.layout.columns = {12, 12};
  FloodIndex index(o);
  BuildContext ctx;
  ctx.sample = DataSample::FromTable(t, 1000, 1);
  ASSERT_TRUE(index.Build(t, ctx).ok());

  const std::vector<size_t> dims{0, 1};
  const KnnEngine engine(&index, dims);
  Rng rng(32);
  for (int trial = 0; trial < 15; ++trial) {
    std::vector<Value> point(3);
    for (size_t d = 0; d < 3; ++d) {
      point[d] = rng.UniformInt(t.min_value(d) - 100, t.max_value(d) + 100);
    }
    const auto got = engine.Search(point, k);
    // Oracle over the *reordered* data (row ids refer to storage order).
    const auto want =
        BruteForceKnnDistances(index.data(), point, dims, k);
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_NEAR(got[i].distance, want[i], 1e-6)
          << "neighbor " << i << " of " << k;
    }
    // Neighbors must be real rows with consistent distances.
    for (const auto& nb : got) {
      double total = 0;
      for (size_t dim : dims) {
        const double diff =
            static_cast<double>(point[dim]) -
            static_cast<double>(index.data().Get(nb.row, dim));
        total += diff * diff;
      }
      EXPECT_NEAR(std::sqrt(total), nb.distance, 1e-6);
    }
  }
}

std::string KnnParamName(
    const ::testing::TestParamInfo<std::tuple<DataShape, size_t>>& info) {
  return std::string(testing::DataShapeName(std::get<0>(info.param))) + "_k" +
         std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    ShapesAndK, KnnTest,
    ::testing::Combine(::testing::Values(DataShape::kUniform,
                                         DataShape::kSkewed,
                                         DataShape::kClustered,
                                         DataShape::kDuplicates),
                       ::testing::Values(size_t{1}, size_t{5}, size_t{32})),
    KnnParamName);

TEST(KnnEdgeTest, KLargerThanTable) {
  const Table t = MakeTable(DataShape::kUniform, 20, 2, 33);
  FloodIndex::Options o;
  o.layout.dim_order = {0, 1};
  o.layout.columns = {4};
  FloodIndex index(o);
  BuildContext ctx;
  ctx.sample = DataSample::FromTable(t, 20, 1);
  ASSERT_TRUE(index.Build(t, ctx).ok());
  const KnnEngine engine(&index);
  const auto got = engine.Search({500'000, 500'000}, 100);
  EXPECT_EQ(got.size(), 20u);
  for (size_t i = 1; i < got.size(); ++i) {
    EXPECT_GE(got[i].distance, got[i - 1].distance);
  }
}

TEST(KnnEdgeTest, ExactPointQueryFindsItself) {
  const Table t = MakeTable(DataShape::kUniform, 3000, 2, 34);
  FloodIndex::Options o;
  o.layout.dim_order = {0, 1};
  o.layout.columns = {16};
  FloodIndex index(o);
  BuildContext ctx;
  ctx.sample = DataSample::FromTable(t, 500, 1);
  ASSERT_TRUE(index.Build(t, ctx).ok());
  const KnnEngine engine(&index);
  // Query exactly at a stored point: nearest distance must be 0.
  const std::vector<Value> point{index.data().Get(1234, 0),
                                 index.data().Get(1234, 1)};
  const auto got = engine.Search(point, 1);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_DOUBLE_EQ(got[0].distance, 0.0);
}

TEST(KnnEdgeTest, RingPruningVisitsFewCellsOnEasyQueries) {
  const Table t = MakeTable(DataShape::kUniform, 50'000, 2, 35);
  FloodIndex::Options o;
  o.layout.dim_order = {0, 1};
  o.layout.columns = {128};
  FloodIndex index(o);
  BuildContext ctx;
  ctx.sample = DataSample::FromTable(t, 1000, 1);
  ASSERT_TRUE(index.Build(t, ctx).ok());
  const KnnEngine engine(&index, {0});
  (void)engine.Search({500'000, 0}, 4);
  // 1-D distance over a 128-column grid: a handful of columns suffices.
  EXPECT_LT(engine.last_cells_visited(), 16u);
}

}  // namespace
}  // namespace flood
