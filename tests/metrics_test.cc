// Observability-layer tests: histogram bucket math, percentile accuracy
// against exact sorted ranks, concurrent record/merge equivalence, the
// metrics registry's dedup contract, Prometheus text rendering, the
// slow-query log, and the Introspect()-vs-QueryStats symmetry audit.
//
// The concurrency tests double as the TSan target for the whole obs
// layer: many recorder threads against one Histogram while a scraper
// thread snapshots it.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "api/database.h"
#include "common/rng.h"
#include "obs/metrics.h"
#include "obs/prometheus.h"
#include "serve/engine.h"
#include "tests/test_util.h"

namespace flood {
namespace {

using obs::BucketIndex;
using obs::BucketUpperBound;
using obs::HistogramData;
using obs::kNumBuckets;

// --- Bucket math -----------------------------------------------------------

TEST(BucketMathTest, EveryValueFitsUnderItsBucketUpperBound) {
  std::vector<int64_t> probes = {0, 1, 2, 3, 4, 5, 7, 8, 100, 999, 1000};
  for (int b = 2; b < 63; ++b) {
    const int64_t p = int64_t{1} << b;
    probes.push_back(p - 1);
    probes.push_back(p);
    probes.push_back(p + 1);
  }
  probes.push_back(INT64_MAX);
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    probes.push_back(rng.UniformInt(0, 1'000'000));
  }
  for (int64_t v : probes) {
    if (v < 0) continue;
    const std::size_t idx = BucketIndex(v);
    ASSERT_LT(idx, kNumBuckets) << v;
    EXPECT_LE(v, BucketUpperBound(idx)) << v;
    if (idx > 0) {
      // Strictly above the previous bucket, i.e. the mapping is exact.
      EXPECT_GT(v, BucketUpperBound(idx - 1)) << v;
    }
  }
}

TEST(BucketMathTest, UpperBoundsAreStrictlyIncreasingAndRoundTrip) {
  for (std::size_t idx = 0; idx + 1 < kNumBuckets; ++idx) {
    EXPECT_LT(BucketUpperBound(idx), BucketUpperBound(idx + 1)) << idx;
  }
  for (std::size_t idx = 0; idx < kNumBuckets; ++idx) {
    EXPECT_EQ(BucketIndex(BucketUpperBound(idx)), idx);
  }
  // Bucket width is at most 25% of the lower bound (log-linear, 4
  // sub-buckets per power of two) — the percentile error guarantee.
  for (std::size_t idx = 5; idx + 1 < kNumBuckets; ++idx) {
    const double lo = static_cast<double>(BucketUpperBound(idx - 1)) + 1;
    const double hi = static_cast<double>(BucketUpperBound(idx));
    if (hi >= static_cast<double>(INT64_MAX)) break;  // saturated tail
    EXPECT_LE(hi - lo, 0.25 * lo + 1) << idx;
  }
}

TEST(BucketMathTest, NegativeValuesClampIntoBucketZero) {
  EXPECT_EQ(BucketIndex(-1), 0u);
  EXPECT_EQ(BucketIndex(INT64_MIN), 0u);
  HistogramData h;
  h.Record(-123);
  EXPECT_EQ(h.count, 1u);
  EXPECT_EQ(h.sum, 0);  // clamped before accumulation
  EXPECT_EQ(h.buckets[0], 1u);
  EXPECT_EQ(h.Percentile(50), 0);
}

// --- Percentiles -----------------------------------------------------------

TEST(HistogramDataTest, EmptyHistogramReadsZero) {
  const HistogramData h;
  EXPECT_EQ(h.Percentile(50), 0);
  EXPECT_EQ(h.Percentile(100), 0);
}

// The acceptance criterion from the bucket design: a percentile readout is
// the upper bound of the bucket holding the exact rank value (clamped to
// the tracked max) — never below the exact value, never above its
// bucket's ceiling.
TEST(HistogramDataTest, PercentilesLandInTheExactValuesBucket) {
  Rng rng(21);
  HistogramData h;
  std::vector<int64_t> values;
  for (int i = 0; i < 10'000; ++i) {
    // Mix of magnitudes, like latencies: microseconds to seconds in ns.
    const int64_t v = rng.UniformInt(0, 1'000) *
                      (int64_t{1} << (i % 20));
    values.push_back(v);
    h.Record(v);
  }
  std::sort(values.begin(), values.end());
  for (double p : {1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0, 99.9}) {
    // Nearest-rank: smallest value with at least ceil(p/100 * N) at or
    // below it.
    const size_t rank = static_cast<size_t>(
        std::max<int64_t>(1, static_cast<int64_t>(
                                 (p / 100.0) * values.size() + 0.9999)));
    const int64_t exact = values[std::min(rank, values.size()) - 1];
    const int64_t est = h.Percentile(p);
    EXPECT_GE(est, exact) << "p" << p;
    EXPECT_LE(est, BucketUpperBound(BucketIndex(exact))) << "p" << p;
  }
  EXPECT_EQ(h.Percentile(100), values.back());  // p100 is the exact max
  EXPECT_EQ(h.max, values.back());
}

TEST(HistogramDataTest, PercentilesAreMonotoneInP) {
  Rng rng(22);
  HistogramData h;
  for (int i = 0; i < 5'000; ++i) {
    h.Record(rng.UniformInt(0, 10'000'000));
  }
  int64_t prev = 0;
  for (double p = 0; p <= 100.0; p += 0.5) {
    const int64_t v = h.Percentile(p);
    EXPECT_GE(v, prev) << "p" << p;
    prev = v;
  }
}

TEST(HistogramDataTest, MergeEqualsRecordingEverythingIntoOne) {
  Rng rng(23);
  HistogramData merged;
  HistogramData all;
  for (int shard = 0; shard < 7; ++shard) {
    HistogramData part;
    for (int i = 0; i < 1'000; ++i) {
      const int64_t v = rng.UniformInt(0, 1 << (4 + shard * 3));
      part.Record(v);
      all.Record(v);
    }
    merged.Merge(part);
  }
  EXPECT_EQ(merged.count, all.count);
  EXPECT_EQ(merged.sum, all.sum);
  EXPECT_EQ(merged.max, all.max);
  EXPECT_EQ(merged.buckets, all.buckets);
  // Merging an empty histogram must not disturb max (its max field is
  // meaningless at count == 0).
  merged.Merge(HistogramData{});
  EXPECT_EQ(merged.max, all.max);
}

// --- Concurrent recorders --------------------------------------------------

TEST(HistogramTest, ConcurrentShardedRecordingMatchesSerialReference) {
  if (!obs::kEnabled) GTEST_SKIP() << "metrics compiled out";
  static obs::Histogram hist;  // registry handles are process-lifetime
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20'000;
  std::vector<std::thread> threads;
  std::atomic<bool> stop{false};
  // A scraper hammering Snapshot() while recorders run: the snapshot is
  // only eventually consistent, but must be data-race-free (TSan) and
  // internally sane.
  std::thread scraper([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const HistogramData s = hist.Snapshot();
      uint64_t bucket_total = 0;
      for (uint64_t b : s.buckets) bucket_total += b;
      EXPECT_LE(bucket_total, static_cast<uint64_t>(kThreads) * kPerThread);
    }
  });
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      Rng rng(100 + t);
      for (int i = 0; i < kPerThread; ++i) {
        hist.Record(rng.UniformInt(0, 1'000'000));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  stop.store(true, std::memory_order_relaxed);
  scraper.join();

  HistogramData reference;
  for (int t = 0; t < kThreads; ++t) {
    Rng rng(100 + t);  // same seeds: same values, serially
    for (int i = 0; i < kPerThread; ++i) {
      reference.Record(rng.UniformInt(0, 1'000'000));
    }
  }
  const HistogramData snap = hist.Snapshot();
  EXPECT_EQ(snap.count, reference.count);
  EXPECT_EQ(snap.sum, reference.sum);
  EXPECT_EQ(snap.max, reference.max);
  EXPECT_EQ(snap.buckets, reference.buckets);
}

TEST(CounterTest, ShardedAddsAllLandExactlyOnce) {
  if (!obs::kEnabled) GTEST_SKIP() << "metrics compiled out";
  static obs::Counter counter;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 50'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (uint64_t i = 0; i < kPerThread; ++i) counter.Add(1);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter.Value(), kThreads * kPerThread);
}

// --- Registry --------------------------------------------------------------

TEST(MetricsRegistryTest, DuplicateRegistrationReturnsTheSameHandle) {
  auto& reg = obs::MetricsRegistry::Instance();
  obs::Counter* a = reg.RegisterCounter("flood_test_dup_total", "help a");
  obs::Counter* b = reg.RegisterCounter("flood_test_dup_total", "help b");
  EXPECT_EQ(a, b);  // first caller wins, including its help string
  obs::Histogram* h1 = reg.RegisterHistogram("flood_test_dup_ns", "h");
  obs::Histogram* h2 = reg.RegisterHistogram("flood_test_dup_ns", "h");
  EXPECT_EQ(h1, h2);
}

TEST(MetricsRegistryTest, SnapshotAllIsSortedAndCoversRegisteredMetrics) {
  auto& reg = obs::MetricsRegistry::Instance();
  obs::Counter* c = reg.RegisterCounter("flood_test_snapshot_total", "x");
  c->Add(41);
  c->Add(1);
  // Touch every per-layer bundle so their names are registered too.
  (void)obs::GlobalDbMetrics();
  (void)obs::GlobalServeMetrics();
  (void)obs::GlobalRouterMetrics();
  (void)obs::GlobalPersistMetrics();
  const std::vector<obs::MetricSnapshot> all = reg.SnapshotAll();
  ASSERT_FALSE(all.empty());
  bool found = false;
  for (size_t i = 0; i < all.size(); ++i) {
    if (i > 0) EXPECT_LT(all[i - 1].name, all[i].name);
    if (all[i].name == "flood_test_snapshot_total") {
      found = true;
      EXPECT_EQ(all[i].kind, obs::MetricKind::kCounter);
      if (obs::kEnabled) EXPECT_EQ(all[i].value, 42.0);
    }
  }
  EXPECT_TRUE(found);
  for (const char* name :
       {"flood_db_query_ns", "flood_db_queries_total",
        "flood_serve_frame_ns", "flood_serve_connections",
        "flood_router_fanout_ns", "flood_persist_wal_append_ns"}) {
    EXPECT_TRUE(std::any_of(all.begin(), all.end(),
                            [&](const obs::MetricSnapshot& m) {
                              return m.name == name;
                            }))
        << name;
  }
}

// --- Prometheus rendering --------------------------------------------------

TEST(PrometheusTest, SanitizeMetricName) {
  EXPECT_EQ(obs::SanitizeMetricName("flood_db_query_ns"),
            "flood_db_query_ns");
  EXPECT_EQ(obs::SanitizeMetricName("serve.frames_decoded"),
            "flood_serve_frames_decoded");
  EXPECT_EQ(obs::SanitizeMetricName("shard0.db.num_rows"),
            "flood_shard0_db_num_rows");
  EXPECT_EQ(obs::SanitizeMetricName("9lives"), "flood__9lives");
}

TEST(PrometheusTest, RendersCounterGaugeAndCumulativeHistogram) {
  std::vector<obs::MetricSnapshot> snaps;
  obs::MetricSnapshot c;
  c.name = "flood_t_total";
  c.help = "a counter";
  c.kind = obs::MetricKind::kCounter;
  c.value = 7;
  snaps.push_back(c);
  obs::MetricSnapshot g;
  g.name = "flood_t_gauge";
  g.kind = obs::MetricKind::kGauge;
  g.value = -2;
  snaps.push_back(g);
  obs::MetricSnapshot h;
  h.name = "flood_t_ns";
  h.kind = obs::MetricKind::kHistogram;
  h.hist.Record(1);
  h.hist.Record(1);
  h.hist.Record(100);
  snaps.push_back(h);

  const std::string text =
      obs::RenderPrometheus(snaps, {{"db.num_rows", 5.0}});
  EXPECT_NE(text.find("# HELP flood_t_total a counter\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE flood_t_total counter\n"), std::string::npos);
  EXPECT_NE(text.find("flood_t_total 7\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE flood_t_gauge gauge\n"), std::string::npos);
  EXPECT_NE(text.find("flood_t_gauge -2\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE flood_t_ns histogram\n"), std::string::npos);
  // Bucket series are cumulative and end at +Inf == _count.
  EXPECT_NE(text.find("flood_t_ns_bucket{le=\"1\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("flood_t_ns_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("flood_t_ns_sum 102\n"), std::string::npos);
  EXPECT_NE(text.find("flood_t_ns_count 3\n"), std::string::npos);
  EXPECT_NE(text.find("flood_db_num_rows 5\n"), std::string::npos);
  // Exactly one TYPE line per family, and every sample line parses as
  // `name{labels} value` with a finite numeric value.
  std::set<std::string> type_families;
  size_t pos = 0;
  while (pos < text.size()) {
    const size_t eol = text.find('\n', pos);
    ASSERT_NE(eol, std::string::npos) << "missing trailing newline";
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.rfind("# TYPE ", 0) == 0) {
      const std::string family =
          line.substr(7, line.find(' ', 7) - 7);
      EXPECT_TRUE(type_families.insert(family).second)
          << "duplicate TYPE for " << family;
    }
  }
}

TEST(PrometheusTest, ExtraGaugeCollidingWithRegistryNameIsDropped) {
  std::vector<obs::MetricSnapshot> snaps;
  obs::MetricSnapshot c;
  c.name = "flood_t_collide";
  c.kind = obs::MetricKind::kCounter;
  c.value = 1;
  snaps.push_back(c);
  // Sanitizes to the same family name; must not produce a second TYPE.
  const std::string text =
      obs::RenderPrometheus(snaps, {{"t.collide", 9.0}});
  EXPECT_EQ(text.find("flood_t_collide 9"), std::string::npos);
  size_t first = text.find("# TYPE flood_t_collide ");
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(text.find("# TYPE flood_t_collide ", first + 1),
            std::string::npos);
}

// --- Slow-query log --------------------------------------------------------

TEST(SlowQueryLogTest, ThresholdedQueriesEmitOneStructuredLine) {
  const Table t = testing::MakeTable(testing::DataShape::kUniform, 2000, 3, 31);
  std::mutex mu;
  std::vector<std::string> lines;
  DatabaseOptions options;
  options.index_name = "full_scan";
  options.slow_query_ns = 1;  // every query is "slow"
  options.slow_query_log = [&](const std::string& line) {
    std::lock_guard<std::mutex> lock(mu);
    lines.push_back(line);
  };
  StatusOr<Database> db = Database::Open(t, std::move(options));
  ASSERT_TRUE(db.ok());
  const Query q = testing::RandomQuery(t, 77);
  (void)db->Run(q);
  {
    std::lock_guard<std::mutex> lock(mu);
    ASSERT_EQ(lines.size(), 1u);
    for (const char* field :
         {"slow_query", "threshold_ns=1", "total_ns=", "plan_ns=",
          "scan_ns=", "delta_ns=", "refine_ns=", "points_scanned=",
          "blocks_skipped=", "simd_blocks="}) {
      EXPECT_NE(lines[0].find(field), std::string::npos) << field;
    }
  }
  // Raising the threshold silences the log.
  DatabaseOptions quiet;
  quiet.index_name = "full_scan";
  quiet.slow_query_ns = INT64_MAX;
  quiet.slow_query_log = [&](const std::string& line) {
    std::lock_guard<std::mutex> lock(mu);
    lines.push_back(line);
  };
  StatusOr<Database> db2 = Database::Open(t, std::move(quiet));
  ASSERT_TRUE(db2.ok());
  (void)db2->Run(q);
  std::lock_guard<std::mutex> lock(mu);
  EXPECT_EQ(lines.size(), 1u);
}

// --- Introspect() symmetry -------------------------------------------------

// Every QueryStats field must surface through DatabaseGauges' db.* keys —
// when someone adds a counter to QueryStats, this test forces them to
// thread it through Stats too (the ISSUE's "no counter left behind"
// audit). Key-set diff, so the failure message names the missing key.
TEST(IntrospectSymmetryTest, DatabaseGaugesCoverEveryQueryStatsField) {
  const Table t = testing::MakeTable(testing::DataShape::kUniform, 500, 3, 32);
  DatabaseOptions options;
  options.index_name = "full_scan";
  StatusOr<Database> db = Database::Open(t, std::move(options));
  ASSERT_TRUE(db.ok());
  (void)db->Run(testing::RandomQuery(t, 5));

  std::set<std::string> keys;
  for (const auto& [key, value] : serve::DatabaseGauges(*db)) {
    keys.insert(key);
  }
  // The QueryStats field list, spelled out: sizeof() tripwire below keeps
  // this enumeration honest.
  const std::set<std::string> expected = {
      "db.points_scanned", "db.points_matched", "db.points_exact",
      "db.cells_visited",  "db.ranges_scanned", "db.blocks_skipped",
      "db.blocks_exact",   "db.simd_blocks",    "db.delta_rows_scanned",
      "db.index_ns",       "db.refine_ns",      "db.scan_ns",
      "db.delta_ns",       "db.total_ns",       "db.max_query_ns"};
  for (const std::string& key : expected) {
    EXPECT_TRUE(keys.count(key)) << "QueryStats field missing from "
                                 << "DatabaseGauges: " << key;
  }
  // Counters the serving tier has grown since PR 6 must also be present.
  for (const char* key :
       {"db.queries_run", "db.empty_queries_skipped", "db.num_rows",
        "db.pending_writes", "db.compactions", "db.persist_poisoned"}) {
    EXPECT_TRUE(keys.count(key)) << key;
  }
  // Tripwire: QueryStats today is 9 u64 counters + 5 i64 timings +
  // 2 accumulator fields = 16 * 8 bytes. If this assert fires, a field
  // was added or removed — update `expected` above AND DatabaseGauges.
  static_assert(sizeof(QueryStats) == 16 * 8,
                "QueryStats changed shape: update DatabaseGauges and the "
                "expected key set in this test");
}

}  // namespace
}  // namespace flood
