#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "ml/decision_tree.h"
#include "ml/linear_regression.h"
#include "ml/random_forest.h"

namespace flood {
namespace {

double Mse(const std::vector<std::vector<double>>& x,
           const std::vector<double>& y,
           const std::function<double(const std::vector<double>&)>& f) {
  double err = 0;
  for (size_t i = 0; i < x.size(); ++i) {
    const double d = f(x[i]) - y[i];
    err += d * d;
  }
  return err / static_cast<double>(x.size());
}

TEST(LinearRegressionTest, RecoversExactLinearFunction) {
  // y = 3*x0 - 2*x1 + 7.
  Rng rng(1);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 200; ++i) {
    const double a = rng.Uniform(-10, 10);
    const double b = rng.Uniform(-10, 10);
    x.push_back({a, b});
    y.push_back(3 * a - 2 * b + 7);
  }
  const LinearRegression lr = LinearRegression::Fit(x, y);
  EXPECT_NEAR(lr.coefficients()[0], 3.0, 1e-6);
  EXPECT_NEAR(lr.coefficients()[1], -2.0, 1e-6);
  EXPECT_NEAR(lr.intercept(), 7.0, 1e-5);
  EXPECT_NEAR(lr.Predict({1, 1}), 8.0, 1e-5);
}

TEST(LinearRegressionTest, HandlesDegenerateConstantFeature) {
  std::vector<std::vector<double>> x{{1, 5}, {2, 5}, {3, 5}};
  std::vector<double> y{2, 4, 6};
  const LinearRegression lr = LinearRegression::Fit(x, y);
  EXPECT_NEAR(lr.Predict({4, 5}), 8.0, 0.1);
}

TEST(LinearRegressionTest, EmptyTrainingSet) {
  const LinearRegression lr = LinearRegression::Fit({}, {});
  EXPECT_DOUBLE_EQ(lr.Predict({1, 2}), 0.0);
}

TEST(DecisionTreeTest, FitsStepFunction) {
  // y = 10 for x<0.5, else 20: a single split nails it.
  Rng rng(2);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  std::vector<uint32_t> idx;
  for (uint32_t i = 0; i < 400; ++i) {
    const double v = rng.NextDouble();
    x.push_back({v});
    y.push_back(v < 0.5 ? 10.0 : 20.0);
    idx.push_back(i);
  }
  TreeParams params;
  Rng tree_rng(3);
  const DecisionTree tree = DecisionTree::Fit(x, y, idx, params, tree_rng);
  EXPECT_NEAR(tree.Predict({0.1}), 10.0, 0.5);
  EXPECT_NEAR(tree.Predict({0.9}), 20.0, 0.5);
}

TEST(DecisionTreeTest, RespectsMaxDepth) {
  Rng rng(4);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  std::vector<uint32_t> idx;
  for (uint32_t i = 0; i < 500; ++i) {
    const double v = rng.NextDouble();
    x.push_back({v});
    y.push_back(std::sin(10 * v));
    idx.push_back(i);
  }
  TreeParams shallow;
  shallow.max_depth = 1;
  TreeParams deep;
  deep.max_depth = 10;
  Rng r1(5);
  Rng r2(5);
  const DecisionTree a = DecisionTree::Fit(x, y, idx, shallow, r1);
  const DecisionTree b = DecisionTree::Fit(x, y, idx, deep, r2);
  EXPECT_LE(a.num_nodes(), 3u);
  EXPECT_GT(b.num_nodes(), a.num_nodes());
}

TEST(DecisionTreeTest, EmptyIndicesYieldZeroPredictor) {
  TreeParams params;
  Rng rng(6);
  const DecisionTree tree = DecisionTree::Fit({}, {}, {}, params, rng);
  EXPECT_DOUBLE_EQ(tree.Predict({1.0}), 0.0);
}

TEST(RandomForestTest, BeatsMeanBaselineOnNonlinearTarget) {
  // y = x0 * x1 (interaction linear models cannot capture).
  Rng rng(7);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 1500; ++i) {
    const double a = rng.Uniform(0, 4);
    const double b = rng.Uniform(0, 4);
    x.push_back({a, b});
    y.push_back(a * b);
  }
  std::vector<std::vector<double>> xt;
  std::vector<double> yt;
  for (int i = 0; i < 300; ++i) {
    const double a = rng.Uniform(0, 4);
    const double b = rng.Uniform(0, 4);
    xt.push_back({a, b});
    yt.push_back(a * b);
  }
  RandomForest::Params params;
  params.num_trees = 30;
  const RandomForest rf = RandomForest::Fit(x, y, params, 11);
  double mean = 0;
  for (double v : y) mean += v;
  mean /= static_cast<double>(y.size());

  const double rf_mse =
      Mse(xt, yt, [&rf](const auto& f) { return rf.Predict(f); });
  const double mean_mse = Mse(xt, yt, [mean](const auto&) { return mean; });
  EXPECT_LT(rf_mse, mean_mse / 4) << "forest should explain most variance";

  const LinearRegression lr = LinearRegression::Fit(x, y);
  const double lr_mse =
      Mse(xt, yt, [&lr](const auto& f) { return lr.Predict(f); });
  EXPECT_LT(rf_mse, lr_mse) << "forest should beat linear on interactions";
}

TEST(RandomForestTest, DeterministicGivenSeed) {
  Rng rng(8);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 200; ++i) {
    const double v = rng.NextDouble();
    x.push_back({v});
    y.push_back(v * 2);
  }
  RandomForest::Params params;
  params.num_trees = 5;
  const RandomForest a = RandomForest::Fit(x, y, params, 99);
  const RandomForest b = RandomForest::Fit(x, y, params, 99);
  for (double probe : {0.1, 0.5, 0.9}) {
    EXPECT_DOUBLE_EQ(a.Predict({probe}), b.Predict({probe}));
  }
}

TEST(RandomForestTest, EmptyTrainingSet) {
  const RandomForest rf = RandomForest::Fit({}, {}, {}, 1);
  EXPECT_DOUBLE_EQ(rf.Predict({1.0}), 0.0);
  EXPECT_EQ(rf.num_trees(), 0u);
}

}  // namespace
}  // namespace flood
