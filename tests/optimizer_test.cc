#include <gtest/gtest.h>

#include "core/layout_optimizer.h"
#include "data/datasets.h"
#include "query/executor.h"
#include "tests/test_util.h"

namespace flood {
namespace {

TEST(LayoutOptimizerTest, ReturnsValidLayout) {
  const BenchDataset ds = MakeTpchDataset(20'000, 3);
  const Workload w = MakeWorkload(ds, WorkloadKind::kOlapSkewed, 40, 4);
  const CostModel model = CostModel::Default();
  LayoutOptimizer::Options opts;
  opts.data_sample_size = 5000;
  opts.query_sample_size = 30;
  opts.max_cells = 1 << 12;
  opts.max_iterations = 10;
  LayoutOptimizer optimizer(&model, opts);
  const auto result = optimizer.Optimize(ds.table, w);
  EXPECT_TRUE(result.layout.IsValid(ds.table.num_dims()));
  EXPECT_LE(result.layout.NumCells(), opts.max_cells);
  EXPECT_GT(result.predicted_cost_ns, 0.0);
  EXPECT_GT(result.learning_seconds, 0.0);
  EXPECT_EQ(result.queries_used, 30u);
}

TEST(LayoutOptimizerTest, OptimizedBeatsSingleCellEstimate) {
  const BenchDataset ds = MakeOsmDataset(20'000, 5);
  const Workload w = MakeWorkload(ds, WorkloadKind::kOlapSkewed, 40, 6);
  const CostModel model = CostModel::Default();
  LayoutOptimizer::Options opts;
  opts.data_sample_size = 5000;
  opts.query_sample_size = 30;
  opts.max_cells = 1 << 12;
  LayoutOptimizer optimizer(&model, opts);
  const auto result = optimizer.Optimize(ds.table, w);

  GridLayout trivial = GridLayout::Default(ds.table.num_dims(), 1);
  const double trivial_cost =
      optimizer.EstimateLayoutCost(ds.table, w, trivial);
  EXPECT_LT(result.predicted_cost_ns, trivial_cost)
      << "learned layout should beat the single-cell layout";
}

TEST(LayoutOptimizerTest, PrioritizesFilteredDimensions) {
  // Workload filters dim 0 (tight) and dim 1 (loose); dims 2/3 never.
  const Table t =
      testing::MakeTable(testing::DataShape::kUniform, 30'000, 4, 7);
  Workload w;
  Rng rng(8);
  for (int i = 0; i < 40; ++i) {
    Query q(4);
    const Value lo = rng.UniformInt(0, 900'000);
    q.SetRange(0, lo, lo + 20'000);    // ~2% selectivity.
    const Value lo1 = rng.UniformInt(0, 500'000);
    q.SetRange(1, lo1, lo1 + 400'000); // ~40% selectivity.
    w.Add(q);
  }
  const CostModel model = CostModel::Default();
  LayoutOptimizer::Options opts;
  opts.data_sample_size = 5000;
  opts.query_sample_size = 40;
  opts.max_cells = 1 << 12;
  LayoutOptimizer optimizer(&model, opts);
  const auto result = optimizer.Optimize(t, w);

  // Unfiltered dims should end up with ~1 column (excluded from grid) or as
  // the sort dimension; dim 0 should get the most columns or be the sort
  // dim.
  uint32_t cols_dim0 = 1;
  uint32_t max_unfiltered_cols = 1;
  for (size_t i = 0; i < result.layout.NumGridDims(); ++i) {
    const size_t dim = result.layout.grid_dim(i);
    if (dim == 0) cols_dim0 = result.layout.columns[i];
    if (dim >= 2) {
      max_unfiltered_cols =
          std::max(max_unfiltered_cols, result.layout.columns[i]);
    }
  }
  const bool dim0_is_sort = result.layout.sort_dim() == 0;
  EXPECT_TRUE(dim0_is_sort || cols_dim0 > 4)
      << "layout: " << result.layout.ToString();
  EXPECT_LE(max_unfiltered_cols, 2u)
      << "unfiltered dims should be excluded; layout: "
      << result.layout.ToString();
}

TEST(BuildOptimizedFloodTest, EndToEndBuildAndQuery) {
  const BenchDataset ds = MakeSalesDataset(15'000, 9);
  const auto [train, test] =
      MakeWorkload(ds, WorkloadKind::kOlapSkewed, 60, 10).Split(0.5, 11);
  const CostModel model = CostModel::Default();
  LayoutOptimizer::Options opts;
  opts.data_sample_size = 5000;
  opts.query_sample_size = 30;
  opts.max_cells = 1 << 12;
  auto built = BuildOptimizedFlood(ds.table, train, model, opts);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  ASSERT_NE(built->index, nullptr);
  EXPECT_GT(built->load_seconds, 0.0);

  // Correctness on the held-out workload.
  for (const Query& q : test) {
    const auto oracle = testing::BruteForce(ds.table, q, q.agg().dim);
    const AggResult r = ExecuteAggregate(*built->index, q, nullptr);
    EXPECT_EQ(r.count, oracle.count);
    if (q.agg().kind == AggSpec::Kind::kSum) {
      EXPECT_EQ(r.sum, oracle.sum);
    }
  }
}

}  // namespace
}  // namespace flood
