// Persistence subsystem (src/persist): Save -> Open(path) round-trip on
// every registered index type (the PR acceptance invariant), snapshot
// corruption/truncation rejection, WAL replay with torn-tail truncation,
// group commit, the snapshot/WAL epoch pairing rules, and Compact() as the
// checkpoint/truncation point.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <string>
#include <vector>

#include "api/database.h"
#include "api/index_registry.h"
#include "persist/snapshot.h"
#include "persist/wal.h"
#include "tests/test_util.h"

namespace flood {
namespace {

using testing::BruteForce;
using testing::DataShape;
using testing::MakeTable;
using testing::RandomQuery;
using testing::RowsOf;
using testing::TempFile;

/// Sorted multiset of collected row *values* (id spaces differ between a
/// live database and its restored twin; the logical rows must not).
std::vector<std::vector<Value>> CollectedTuples(Database& db,
                                                const Query& q) {
  const QueryResult r = db.Collect(q);
  std::vector<std::vector<Value>> tuples;
  tuples.reserve(r.rows.size());
  for (RowId row : r.rows) tuples.push_back(db.GetRow(row));
  std::sort(tuples.begin(), tuples.end());
  return tuples;
}

Workload SmallTrainingWorkload(const Table& table, uint64_t seed) {
  Workload w;
  for (uint64_t i = 0; i < 12; ++i) {
    Query q = RandomQuery(table, seed + i);
    if (i % 3 == 0) q.set_agg({AggSpec::Kind::kSum, 1});
    w.Add(q);
  }
  return w;
}

// Acceptance criterion: Save -> Open(path) -> identical query results
// (COUNT/SUM/Collect) vs the live database on every registered index type,
// with staged inserts AND tombstones in flight across the round trip.
TEST(PersistTest, SaveOpenRoundTripOnEveryIndex) {
  const Table base = MakeTable(DataShape::kClustered, 1200, 3, 81);
  const Table extra = MakeTable(DataShape::kUniform, 150, 3, 82);
  const std::vector<std::vector<Value>> extra_rows = RowsOf(extra);
  const Workload train = SmallTrainingWorkload(base, 8300);

  std::vector<Query> queries;
  for (uint64_t seed = 0; seed < 12; ++seed) {
    Query q = RandomQuery(base, 8400 + seed * 5);
    if (seed % 3 == 1) q.set_agg({AggSpec::Kind::kSum, 2});
    queries.push_back(q);
  }

  for (const std::string& name : IndexRegistry::Global().Names()) {
    TempFile snap("roundtrip_" + name + ".snap");
    DatabaseOptions options;
    options.index_name = name;
    options.training_workload = train;
    StatusOr<Database> db = Database::Open(base, options);
    ASSERT_TRUE(db.ok()) << name << ": " << db.status().ToString();
    ASSERT_TRUE(db->InsertBatch(extra_rows).ok()) << name;
    // One base delete (tombstone) and one staged delete (erase).
    ASSERT_TRUE(db->Delete(db->GetRow(7)).ok()) << name;
    ASSERT_TRUE(db->Delete(extra_rows[3]).ok()) << name;

    ASSERT_TRUE(db->Save(snap.path()).ok()) << name;
    EXPECT_EQ(db->persist_epoch(), 1u) << name;
    EXPECT_EQ(db->snapshot_path(), snap.path()) << name;

    StatusOr<Database> restored = Database::Open(snap.path());
    ASSERT_TRUE(restored.ok()) << name << ": "
                               << restored.status().ToString();
    EXPECT_EQ(restored->index_name(), db->index_name()) << name;
    EXPECT_EQ(restored->num_rows(), db->num_rows()) << name;
    EXPECT_EQ(restored->base_rows(), db->base_rows()) << name;
    EXPECT_EQ(restored->delta_inserts(), db->delta_inserts()) << name;
    EXPECT_EQ(restored->delta_tombstones(), db->delta_tombstones()) << name;
    EXPECT_EQ(restored->persist_epoch(), 1u) << name;

    const BatchResult live = db->RunBatch(queries);
    const BatchResult snap_batch = restored->RunBatch(queries);
    ASSERT_TRUE(live.status.ok()) << name;
    ASSERT_TRUE(snap_batch.status.ok()) << name;
    for (size_t i = 0; i < queries.size(); ++i) {
      EXPECT_EQ(snap_batch.results[i].count, live.results[i].count)
          << name << " #" << i << " " << queries[i].ToString();
      EXPECT_EQ(snap_batch.results[i].sum, live.results[i].sum)
          << name << " #" << i;
    }
    const Query probe = RandomQuery(base, 8500);
    EXPECT_EQ(CollectedTuples(*restored, probe), CollectedTuples(*db, probe))
        << name;
  }
}

TEST(PersistTest, SnapshotOpenPinsLearnedLayout) {
  const Table base = MakeTable(DataShape::kSkewed, 2000, 3, 83);
  TempFile snap("layout.snap");
  DatabaseOptions options;
  options.index_name = "flood";
  options.training_workload = SmallTrainingWorkload(base, 8600);
  StatusOr<Database> db = Database::Open(base, options);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE(db->Save(snap.path()).ok());

  // No training workload passed on restore: with the layout pinned there
  // is nothing to learn, and the physical structure must come back
  // identical (same grid, same cell count).
  StatusOr<Database> restored = Database::Open(snap.path());
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->Describe(), db->Describe());
  EXPECT_EQ(restored->index().SerializedLayout(),
            db->index().SerializedLayout());
  EXPECT_FALSE(restored->index().SerializedLayout().empty());
  EXPECT_EQ(restored->IndexProperties(), db->IndexProperties());
  // The workload traveled with the snapshot, so SUM side columns and
  // future compactions keep their training context.
  ASSERT_TRUE(restored->Compact().ok());
  EXPECT_EQ(restored->num_rows(), base.num_rows());
}

// The snapshot's layout is pinned for the restore build only: a restored
// database must stay free to RElearn when the workload shifts, exactly
// like a cold-opened one.
TEST(PersistTest, RestoredDatabaseRelearnsLayoutOnRetrain) {
  const Table base = MakeTable(DataShape::kUniform, 4000, 3, 95);
  Workload train;  // Strongly favors dimension 0.
  for (Value lo = 0; lo < 900'000; lo += 60'000) {
    train.Add(QueryBuilder(3).Range(0, lo, lo + 20'000).Count().Build());
  }
  TempFile snap("relearn.snap");
  DatabaseOptions options;
  options.index_name = "flood";
  options.training_workload = train;
  StatusOr<Database> db = Database::Open(base, options);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE(db->Save(snap.path()).ok());

  StatusOr<Database> restored = Database::Open(snap.path());
  ASSERT_TRUE(restored.ok());
  const std::string pinned = restored->index().SerializedLayout();
  EXPECT_EQ(pinned, db->index().SerializedLayout());

  Workload shifted;  // Now everything filters dimension 2.
  for (Value lo = 0; lo < 900'000; lo += 60'000) {
    shifted.Add(QueryBuilder(3).Range(2, lo, lo + 20'000).Count().Build());
  }
  ASSERT_TRUE(restored->Retrain(shifted).ok());
  EXPECT_NE(restored->index().SerializedLayout(), pinned)
      << "restore froze the snapshot layout into future rebuilds";
}

TEST(PersistTest, CorruptAndTruncatedSnapshotsAreRejected) {
  const Table base = MakeTable(DataShape::kUniform, 600, 2, 84);
  TempFile snap("corrupt.snap");
  StatusOr<Database> db =
      Database::Open(base, DatabaseOptions{.index_name = "flood"});
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE(db->Insert({1, 2}).ok());
  ASSERT_TRUE(db->Save(snap.path()).ok());

  std::string good;
  ASSERT_TRUE(persist::ReadFileToString(snap.path(), &good).ok());
  ASSERT_TRUE(persist::ReadSnapshot(snap.path()).ok());

  TempFile bad("corrupt_mut.snap");
  // Single-byte corruption anywhere (header, section table, payloads) must
  // be caught by a checksum or a structural check — never crash or load.
  for (size_t pos = 0; pos < good.size(); pos += 131) {
    std::string mutated = good;
    mutated[pos] = static_cast<char>(mutated[pos] ^ 0x5A);
    ASSERT_TRUE(persist::WriteFileAtomic(bad.path(), mutated).ok());
    EXPECT_FALSE(persist::ReadSnapshot(bad.path()).ok()) << "pos " << pos;
  }
  // Truncation at any prefix must be rejected too.
  for (size_t len : {size_t{0}, size_t{7}, size_t{23}, good.size() / 4,
                     good.size() / 2, good.size() - 1}) {
    ASSERT_TRUE(
        persist::WriteFileAtomic(bad.path(), good.substr(0, len)).ok());
    EXPECT_FALSE(persist::ReadSnapshot(bad.path()).ok()) << "len " << len;
  }
  EXPECT_EQ(persist::ReadSnapshot(bad.path() + ".does_not_exist")
                .status()
                .code(),
            StatusCode::kNotFound);
}

TEST(PersistTest, DictionariesRoundTripThroughSnapshotSections) {
  const Table base = MakeTable(DataShape::kUniform, 300, 2, 85);
  Dictionary colors;
  colors.Encode("red");
  colors.Encode("green");
  colors.Encode("blue");
  Dictionary cities;
  cities.Encode("zurich");
  cities.Encode("tokyo");

  TempFile snap("dicts.snap");
  persist::SnapshotContents contents;
  contents.epoch = 3;
  contents.index_name = "full_scan";
  contents.base = &base;
  contents.dictionaries = {{"color", &colors}, {"city", &cities}};
  ASSERT_TRUE(persist::WriteSnapshot(snap.path(), contents).ok());

  StatusOr<persist::SnapshotData> data = persist::ReadSnapshot(snap.path());
  ASSERT_TRUE(data.ok()) << data.status().ToString();
  EXPECT_EQ(data->epoch, 3u);
  ASSERT_EQ(data->dictionaries.size(), 2u);
  EXPECT_EQ(data->dictionaries[0].first, "color");
  EXPECT_EQ(data->dictionaries[0].second.size(), 3u);
  EXPECT_EQ(data->dictionaries[0].second.Lookup("green"), 1);
  EXPECT_EQ(data->dictionaries[1].second.Decode(0), "zurich");
  EXPECT_EQ(data->dictionaries[1].second.Lookup("nowhere"), -1);
}

// --- WAL -------------------------------------------------------------------

TEST(PersistTest, WalReplayRestoresWritesOnFreshTableReopen) {
  const Table base = MakeTable(DataShape::kUniform, 800, 2, 86);
  TempFile wal("replay.wal");
  DatabaseOptions options;
  options.index_name = "kdtree";
  options.wal_path = wal.path();

  const std::vector<Value> victim = [&] {
    StatusOr<Database> db = Database::Open(base, options);
    FLOOD_CHECK(db.ok());
    FLOOD_CHECK(db->wal_attached());
    FLOOD_CHECK(db->Insert({11, 22}).ok());
    FLOOD_CHECK(db->Insert({33, 44}).ok());
    FLOOD_CHECK(db->Insert({33, 44}).ok());
    std::vector<Value> v = db->GetRow(0);
    FLOOD_CHECK(db->Delete(v).ok());       // Tombstones base rows.
    FLOOD_CHECK(db->Delete({33, 44}).ok());  // Erases two staged inserts.
    FLOOD_CHECK(db->wal_records_committed() == 5);
    return v;
  }();  // Database closed; only the WAL survives.

  StatusOr<Database> db = Database::Open(base, options);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_EQ(db->delta_inserts(), 1u);  // {11, 22}.
  EXPECT_GE(db->delta_tombstones(), 1u);
  Query eq(2);
  eq.SetEquals(0, 11);
  eq.SetEquals(1, 22);
  EXPECT_EQ(db->Run(eq).count, 1u);
  Query gone(2);
  gone.SetEquals(0, victim[0]);
  gone.SetEquals(1, victim[1]);
  EXPECT_EQ(db->Run(gone).count, 0u);
  EXPECT_EQ(db->Run(QueryBuilder(2).Count().Build()).count, db->num_rows());
}

TEST(PersistTest, WalTornTailIsTruncatedAndAppendsContinue) {
  const Table base = MakeTable(DataShape::kUniform, 400, 2, 87);
  TempFile wal("torn.wal");
  DatabaseOptions options;
  options.index_name = "full_scan";
  options.wal_path = wal.path();
  {
    StatusOr<Database> db = Database::Open(base, options);
    ASSERT_TRUE(db.ok());
    for (Value i = 0; i < 5; ++i) ASSERT_TRUE(db->Insert({i, i}).ok());
  }
  // Simulate a crash mid-append: garbage after the last intact record.
  std::string bytes;
  ASSERT_TRUE(persist::ReadFileToString(wal.path(), &bytes).ok());
  const size_t intact = bytes.size();
  {
    std::FILE* f = std::fopen(wal.path().c_str(), "ab");
    ASSERT_NE(f, nullptr);
    const char garbage[] = "\x13\x37partial-record";
    std::fwrite(garbage, 1, sizeof(garbage), f);
    std::fclose(f);
  }
  {
    StatusOr<persist::WalContents> contents = persist::ReadWal(wal.path());
    ASSERT_TRUE(contents.ok());
    EXPECT_TRUE(contents->torn_tail);
    EXPECT_EQ(contents->valid_bytes, intact);
    EXPECT_EQ(contents->records.size(), 5u);
  }
  {
    StatusOr<Database> db = Database::Open(base, options);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    EXPECT_EQ(db->delta_inserts(), 5u);  // Torn bytes were not applied.
    ASSERT_TRUE(db->Insert({100, 100}).ok());  // Appends after the repair.
  }
  StatusOr<Database> db = Database::Open(base, options);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->delta_inserts(), 6u);

  // A tail cut *inside* an intact record drops exactly that record.
  ASSERT_TRUE(persist::ReadFileToString(wal.path(), &bytes).ok());
  ASSERT_TRUE(
      persist::WriteFileAtomic(wal.path(), bytes.substr(0, bytes.size() - 3))
          .ok());
  StatusOr<Database> cut = Database::Open(base, options);
  ASSERT_TRUE(cut.ok());
  EXPECT_EQ(cut->delta_inserts(), 5u);
}

TEST(PersistTest, WalEpochPairingRules) {
  const Table base = MakeTable(DataShape::kUniform, 500, 2, 88);
  TempFile snap("epoch.snap");
  TempFile wal("epoch.wal");
  DatabaseOptions options;
  options.index_name = "full_scan";
  options.wal_path = wal.path();
  {
    StatusOr<Database> db = Database::Open(base, options);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE(db->Insert({1, 1}).ok());
    ASSERT_TRUE(db->Save(snap.path()).ok());  // Epoch 1; WAL truncated.
    ASSERT_TRUE(db->Insert({2, 2}).ok());     // Lives only in the WAL.
  }
  // Snapshot (epoch 1) + matching WAL: both inserts visible.
  {
    StatusOr<Database> db = Database::Open(snap.path(), options);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    EXPECT_EQ(db->delta_inserts(), 2u);
    EXPECT_EQ(db->persist_epoch(), 1u);
  }
  // A fresh-table open (epoch 0) must refuse the epoch-1 WAL.
  StatusOr<Database> stale = Database::Open(base, options);
  EXPECT_FALSE(stale.ok());
  EXPECT_EQ(stale.status().code(), StatusCode::kFailedPrecondition);

  // Crash window between snapshot write and WAL truncation: checkpoint to
  // epoch 2, then put the epoch-1 log (still holding {2,2}) back on disk.
  std::string old_wal;
  ASSERT_TRUE(persist::ReadFileToString(wal.path(), &old_wal).ok());
  {
    StatusOr<Database> db = Database::Open(snap.path(), options);
    ASSERT_TRUE(db.ok());
    EXPECT_EQ(db->delta_inserts(), 2u);
    ASSERT_TRUE(db->Save(snap.path()).ok());  // Epoch 2; WAL truncated.
  }
  ASSERT_TRUE(persist::WriteFileAtomic(wal.path(), old_wal).ok());
  ASSERT_EQ(persist::ReadWal(wal.path())->epoch, 1u);

  StatusOr<Database> db = Database::Open(snap.path(), options);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  // The epoch-1 records are already folded into the epoch-2 snapshot, so
  // the stale log is discarded, not double-applied.
  EXPECT_EQ(db->delta_inserts(), 2u);
  EXPECT_EQ(db->Run(QueryBuilder(2).Count().Build()).count,
            base.num_rows() + 2);
  EXPECT_EQ(persist::ReadWal(wal.path())->epoch, 2u);
  EXPECT_TRUE(persist::ReadWal(wal.path())->records.empty());
}

TEST(PersistTest, CompactIsTheWalTruncationPoint) {
  const Table base = MakeTable(DataShape::kUniform, 700, 2, 89);
  TempFile snap("compact.snap");
  TempFile wal("compact.wal");
  DatabaseOptions options;
  options.index_name = "flood";
  options.wal_path = wal.path();
  StatusOr<Database> db = Database::Open(base, options);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE(db->Save(snap.path()).ok());
  for (Value i = 0; i < 20; ++i) ASSERT_TRUE(db->Insert({i, i * 3}).ok());
  ASSERT_GT(persist::ReadWal(wal.path())->records.size(), 0u);

  ASSERT_TRUE(db->Compact().ok());
  EXPECT_EQ(db->pending_writes(), 0u);
  EXPECT_EQ(db->base_rows(), base.num_rows() + 20);
  // Snapshot-then-truncate: the WAL is empty at the new epoch, and the
  // refreshed snapshot alone reproduces the compacted state.
  EXPECT_EQ(db->persist_epoch(), 2u);
  EXPECT_TRUE(persist::ReadWal(wal.path())->records.empty());
  EXPECT_EQ(persist::ReadWal(wal.path())->epoch, 2u);

  StatusOr<Database> restored = Database::Open(snap.path(), options);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->num_rows(), base.num_rows() + 20);
  EXPECT_EQ(restored->pending_writes(), 0u);
  const Query all = QueryBuilder(2).Count().Build();
  EXPECT_EQ(restored->Run(all).count, db->Run(all).count);
}

TEST(PersistTest, FailedSnapshotLosesNothing) {
  const Table base = MakeTable(DataShape::kUniform, 300, 2, 90);
  TempFile wal("failedsnap.wal");
  DatabaseOptions options;
  options.index_name = "full_scan";
  options.wal_path = wal.path();
  StatusOr<Database> db = Database::Open(base, options);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE(db->Insert({5, 6}).ok());

  // Unwritable target: Save must fail without touching state or the WAL.
  const std::string bogus =
      ::testing::TempDir() + "flood_no_such_dir/never.snap";
  EXPECT_FALSE(db->Save(bogus).ok());
  EXPECT_EQ(db->persist_epoch(), 0u);
  EXPECT_EQ(db->snapshot_path(), "");
  EXPECT_EQ(db->delta_inserts(), 1u);
  EXPECT_EQ(persist::ReadWal(wal.path())->records.size(), 1u);

  // Compaction without a snapshot path keeps the WAL too (the log still
  // replays the same logical writes over the caller's original table).
  ASSERT_TRUE(db->Compact().ok());
  EXPECT_EQ(persist::ReadWal(wal.path())->records.size(), 1u);
  StatusOr<Database> reopened = Database::Open(base, options);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened->num_rows(), base.num_rows() + 1);
}

TEST(PersistTest, InsertBatchGroupCommitsOneBatch) {
  const Table base = MakeTable(DataShape::kUniform, 300, 3, 91);
  TempFile wal("group.wal");
  DatabaseOptions options;
  options.index_name = "full_scan";
  options.wal_path = wal.path();
  options.durability = Durability::kSync;
  StatusOr<Database> db = Database::Open(base, options);
  ASSERT_TRUE(db.ok());

  const Table extra = MakeTable(DataShape::kUniform, 64, 3, 92);
  ASSERT_TRUE(db->InsertBatch(RowsOf(extra)).ok());
  EXPECT_EQ(db->wal_records_committed(), 64u);
  StatusOr<persist::WalContents> contents = persist::ReadWal(wal.path());
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents->records.size(), 64u);
  EXPECT_FALSE(contents->torn_tail);
  for (const persist::WalRecord& rec : contents->records) {
    EXPECT_EQ(rec.type, persist::WalRecordType::kInsert);
    EXPECT_EQ(rec.values.size(), 3u);
  }
}

}  // namespace
}  // namespace flood
