#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "data/distributions.h"
#include "learned/plm.h"
#include "learned/search_util.h"
#include "learned/static_btree.h"

namespace flood {
namespace {

TEST(StaticBTreeTest, FindSegmentMatchesLinearScan) {
  std::vector<Value> keys{-50, 0, 3, 9, 100, 101, 5000};
  const StaticBTree bt(keys);
  for (Value v = -60; v < 5010; v += 7) {
    size_t expected = 0;
    for (size_t i = 0; i < keys.size(); ++i) {
      if (keys[i] <= v) expected = i;
    }
    EXPECT_EQ(bt.FindSegment(v), expected) << "v=" << v;
  }
}

TEST(StaticBTreeTest, LargeKeySetMultiLevel) {
  std::vector<Value> keys;
  for (Value v = 0; v < 10'000; v += 3) keys.push_back(v);
  const StaticBTree bt(keys);
  Rng rng(5);
  for (int i = 0; i < 2000; ++i) {
    const Value v = rng.UniformInt(-5, 10'005);
    const size_t got = bt.FindSegment(v);
    const auto it = std::upper_bound(keys.begin(), keys.end(), v);
    const size_t expected =
        it == keys.begin() ? 0 : static_cast<size_t>(it - keys.begin()) - 1;
    EXPECT_EQ(got, expected) << "v=" << v;
  }
}

TEST(GallopTest, LowerAndUpperBoundMatchStd) {
  Rng rng(6);
  std::vector<Value> v = UniformColumn(5000, 0, 500, rng);
  std::sort(v.begin(), v.end());
  const auto get = [&v](size_t i) { return v[i]; };
  for (int i = 0; i < 500; ++i) {
    const Value probe = rng.UniformInt(-5, 505);
    const size_t lb = static_cast<size_t>(
        std::lower_bound(v.begin(), v.end(), probe) - v.begin());
    const size_t ub = static_cast<size_t>(
        std::upper_bound(v.begin(), v.end(), probe) - v.begin());
    // Gallop from various (valid lower-bound) starting points.
    for (size_t from : {size_t{0}, lb / 2, lb}) {
      EXPECT_EQ(GallopLowerBound(get, from, v.size(), probe), lb);
    }
    for (size_t from : {size_t{0}, ub / 2, std::min(lb, ub)}) {
      EXPECT_EQ(GallopUpperBound(get, from, v.size(), probe), ub);
    }
    EXPECT_EQ(BinaryLowerBound(get, 0, v.size(), probe), lb);
    EXPECT_EQ(BinaryUpperBound(get, 0, v.size(), probe), ub);
  }
}

std::vector<Value> SortedData(int kind, size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Value> v;
  switch (kind) {
    case 0:
      v = UniformColumn(n, 0, 10'000'000, rng);
      break;
    case 1:
      v = LognormalColumn(n, 7.0, 2.5, 1.0, rng);
      break;
    case 2:
      v = ZipfColumn(n, 100, 1.3, rng);
      break;
    case 3: {
      // Staggered uniform (Fig. 17): uniform over disjoint intervals.
      v.reserve(n);
      for (size_t i = 0; i < n; ++i) {
        const Value block = static_cast<Value>(i % 10);
        v.push_back(block * 1'000'000 + rng.UniformInt(0, 1000));
      }
      break;
    }
    default:
      v.assign(n, 3);
  }
  std::sort(v.begin(), v.end());
  return v;
}

class PlmPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(PlmPropertyTest, PredictIsLowerBoundOfTrueRank) {
  const auto [kind, delta] = GetParam();
  const std::vector<Value> sorted = SortedData(kind, 20'000, 11);
  const Plm plm = Plm::Train(sorted, delta);
  Rng rng(12);
  for (int i = 0; i < 3000; ++i) {
    const Value v =
        rng.UniformInt(sorted.front() - 100, sorted.back() + 100);
    const size_t truth = static_cast<size_t>(
        std::lower_bound(sorted.begin(), sorted.end(), v) - sorted.begin());
    EXPECT_LE(plm.Predict(v), truth) << "v=" << v;
  }
}

TEST_P(PlmPropertyTest, PredictPlusGallopFindsExactBounds) {
  const auto [kind, delta] = GetParam();
  const std::vector<Value> sorted = SortedData(kind, 20'000, 13);
  const Plm plm = Plm::Train(sorted, delta);
  const auto get = [&sorted](size_t i) { return sorted[i]; };
  Rng rng(14);
  for (int i = 0; i < 2000; ++i) {
    const Value v =
        rng.UniformInt(sorted.front() - 100, sorted.back() + 100);
    const size_t lb = static_cast<size_t>(
        std::lower_bound(sorted.begin(), sorted.end(), v) - sorted.begin());
    const size_t ub = static_cast<size_t>(
        std::upper_bound(sorted.begin(), sorted.end(), v) - sorted.begin());
    EXPECT_EQ(GallopLowerBound(get, plm.Predict(v), sorted.size(), v), lb);
    EXPECT_EQ(GallopUpperBound(get, plm.Predict(v), sorted.size(), v), ub);
  }
}

TEST_P(PlmPropertyTest, AverageErrorWithinBudget) {
  const auto [kind, delta] = GetParam();
  const std::vector<Value> sorted = SortedData(kind, 20'000, 15);
  const Plm plm = Plm::Train(sorted, delta);
  // Global average under-estimation over distinct trained values must
  // respect the per-segment budget (so globally too). Predict() floors its
  // estimate to an integer rank, which can add up to 1 to each error.
  double total_err = 0;
  size_t count = 0;
  for (size_t i = 0; i < sorted.size(); ++i) {
    if (i > 0 && sorted[i] == sorted[i - 1]) continue;
    const size_t pred = plm.Predict(sorted[i]);
    EXPECT_LE(pred, i);
    total_err += static_cast<double>(i - pred);
    ++count;
  }
  EXPECT_LE(total_err / static_cast<double>(count), delta + 1.0);
}

std::string PlmParamName(
    const ::testing::TestParamInfo<std::tuple<int, double>>& info) {
  static constexpr const char* kNames[] = {"Uniform", "Lognormal", "Zipf",
                                           "Staggered", "Constant"};
  return std::string(kNames[std::get<0>(info.param)]) + "_delta" +
         std::to_string(static_cast<int>(std::get<1>(info.param)));
}

INSTANTIATE_TEST_SUITE_P(
    Distributions, PlmPropertyTest,
    ::testing::Combine(::testing::Values(0, 1, 2, 3, 4),
                       ::testing::Values(8.0, 50.0, 200.0)),
    PlmParamName);

TEST(PlmTest, LowerDeltaYieldsMoreSegments) {
  const std::vector<Value> sorted = SortedData(1, 50'000, 21);
  const Plm tight = Plm::Train(sorted, 5.0);
  const Plm loose = Plm::Train(sorted, 500.0);
  EXPECT_GT(tight.num_segments(), loose.num_segments());
  EXPECT_GT(tight.MemoryUsageBytes(), loose.MemoryUsageBytes());
}

TEST(PlmTest, EmptyAndTinyInputs) {
  const Plm empty = Plm::Train({}, 10);
  EXPECT_EQ(empty.Predict(5), 0u);
  const Plm one = Plm::Train({7}, 10);
  EXPECT_EQ(one.Predict(6), 0u);
  EXPECT_EQ(one.Predict(7), 0u);
  EXPECT_LE(one.Predict(8), 1u);
}

}  // namespace
}  // namespace flood
