#include <gtest/gtest.h>

#include "query/query.h"
#include "query/workload.h"
#include "tests/test_util.h"

namespace flood {
namespace {

TEST(QueryTest, UnfilteredByDefault) {
  Query q(3);
  EXPECT_EQ(q.num_dims(), 3u);
  EXPECT_EQ(q.NumFiltered(), 0u);
  for (size_t d = 0; d < 3; ++d) EXPECT_FALSE(q.IsFiltered(d));
}

TEST(QueryTest, BuilderComposesFilters) {
  Query q = QueryBuilder(4)
                .Range(0, 10, 20)
                .Equals(2, 5)
                .AtLeast(3, 100)
                .Sum(1)
                .Build();
  EXPECT_TRUE(q.IsFiltered(0));
  EXPECT_FALSE(q.IsFiltered(1));
  EXPECT_TRUE(q.IsFiltered(2));
  EXPECT_TRUE(q.IsFiltered(3));
  EXPECT_EQ(q.NumFiltered(), 3u);
  EXPECT_EQ(q.range(0).lo, 10);
  EXPECT_EQ(q.range(0).hi, 20);
  EXPECT_EQ(q.range(2).lo, 5);
  EXPECT_EQ(q.range(2).hi, 5);
  EXPECT_EQ(q.range(3).hi, kValueMax);
  EXPECT_EQ(q.agg().kind, AggSpec::Kind::kSum);
  EXPECT_EQ(q.agg().dim, 1u);
}

TEST(QueryTest, EmptyRangeDetected) {
  Query q(2);
  q.SetRange(0, 10, 5);
  EXPECT_TRUE(q.IsEmpty());
}

TEST(QueryTest, MatchesChecksAllFilters) {
  StatusOr<Table> t = Table::FromColumns({{1, 5, 9}, {10, 20, 30}});
  ASSERT_TRUE(t.ok());
  Query q = QueryBuilder(2).Range(0, 2, 9).Range(1, 25, 35).Build();
  EXPECT_FALSE(q.Matches(*t, 0));  // dim0=1 out.
  EXPECT_FALSE(q.Matches(*t, 1));  // dim1=20 out.
  EXPECT_TRUE(q.Matches(*t, 2));
}

TEST(QueryTest, ToStringMentionsFilters) {
  Query q = QueryBuilder(3).Range(0, 1, 2).Equals(1, 7).Build();
  const std::string s = q.ToString();
  EXPECT_NE(s.find("d0"), std::string::npos);
  EXPECT_NE(s.find("== 7"), std::string::npos);
  EXPECT_NE(s.find("COUNT"), std::string::npos);
}

TEST(ValueRangeTest, ContainsAndFullRange) {
  ValueRange full;
  EXPECT_TRUE(full.IsFullRange());
  EXPECT_TRUE(full.Contains(0));
  ValueRange r{3, 8};
  EXPECT_TRUE(r.Contains(3));
  EXPECT_TRUE(r.Contains(8));
  EXPECT_FALSE(r.Contains(2));
  EXPECT_FALSE(r.Contains(9));
  EXPECT_FALSE(r.IsEmpty());
  EXPECT_TRUE((ValueRange{5, 4}).IsEmpty());
}

TEST(DataSampleTest, SelectivityMatchesDistribution) {
  // 1000 rows, dim values 0..999.
  std::vector<Value> vals(1000);
  for (size_t i = 0; i < 1000; ++i) vals[i] = static_cast<Value>(i);
  StatusOr<Table> t = Table::FromColumns({vals});
  ASSERT_TRUE(t.ok());
  const DataSample s = DataSample::FromTable(*t, 1000, 1);  // Full sample.
  EXPECT_EQ(s.num_rows(), 1000u);
  EXPECT_NEAR(s.Selectivity(0, {0, 499}), 0.5, 1e-9);
  EXPECT_NEAR(s.Selectivity(0, {0, 99}), 0.1, 1e-9);
  EXPECT_DOUBLE_EQ(s.Selectivity(0, {2000, 3000}), 0.0);
  EXPECT_DOUBLE_EQ(s.Selectivity(0, {500, 400}), 0.0);  // Empty range.
}

TEST(DataSampleTest, SubsampleSizeRespected) {
  const Table t = testing::MakeTable(testing::DataShape::kUniform, 5000, 2, 9);
  const DataSample s = DataSample::FromTable(t, 100, 2);
  EXPECT_EQ(s.num_rows(), 100u);
  EXPECT_EQ(s.num_dims(), 2u);
}

TEST(DataSampleTest, MeasuredVsEstimatedSelectivityOnIndependentData) {
  const Table t =
      testing::MakeTable(testing::DataShape::kUniform, 20'000, 2, 10);
  const DataSample s = DataSample::FromTable(t, 20'000, 3);
  Query q = QueryBuilder(2).Range(0, 0, 500'000).Range(1, 0, 500'000).Build();
  const double est = s.EstimatedQuerySelectivity(q);
  const double measured = s.MeasuredQuerySelectivity(q);
  EXPECT_NEAR(est, 0.25, 0.02);
  EXPECT_NEAR(measured, est, 0.02);
}

TEST(WorkloadTest, FilterFrequencyAndSelectivity) {
  const Table t = testing::MakeTable(testing::DataShape::kUniform, 1000, 2, 4);
  const DataSample s = DataSample::FromTable(t, 1000, 5);
  Workload w;
  w.Add(QueryBuilder(2).Range(0, 0, 100'000).Build());
  w.Add(QueryBuilder(2).Range(0, 0, 100'000).Range(1, 0, 1'000'000).Build());
  EXPECT_DOUBLE_EQ(w.FilterFrequency(0), 1.0);
  EXPECT_DOUBLE_EQ(w.FilterFrequency(1), 0.5);
  // dim0 filtered tightly in both queries; dim1 loosely in one.
  EXPECT_LT(w.AvgSelectivity(0, s), w.AvgSelectivity(1, s));
}

TEST(WorkloadTest, SplitPartitionsQueries) {
  Workload w;
  for (int i = 0; i < 100; ++i) w.Add(Query(2));
  const auto [train, test] = w.Split(0.7, 42);
  EXPECT_EQ(train.size(), 70u);
  EXPECT_EQ(test.size(), 30u);
}

TEST(WorkloadTest, SampleCapsSize) {
  Workload w;
  for (int i = 0; i < 50; ++i) w.Add(Query(1));
  EXPECT_EQ(w.Sample(10, 1).size(), 10u);
  EXPECT_EQ(w.Sample(99, 1).size(), 50u);
}

}  // namespace
}  // namespace flood
