#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "data/distributions.h"
#include "learned/rmi.h"

namespace flood {
namespace {

TEST(LinearModelTest, FitsExactLine) {
  std::vector<double> xs{1, 2, 3, 4};
  std::vector<double> ys{3, 5, 7, 9};  // y = 2x + 1
  const LinearModel m = LinearModel::Fit(xs, ys);
  EXPECT_NEAR(m.slope, 2.0, 1e-9);
  EXPECT_NEAR(m.intercept, 1.0, 1e-9);
  EXPECT_NEAR(m.Predict(10), 21.0, 1e-9);
}

TEST(LinearModelTest, ConstantXFallsBackToMean) {
  const LinearModel m = LinearModel::Fit({5, 5, 5}, {1, 2, 3});
  EXPECT_DOUBLE_EQ(m.slope, 0.0);
  EXPECT_NEAR(m.Predict(5), 2.0, 1e-9);
}

std::vector<Value> MakeSorted(int kind, size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Value> v;
  switch (kind) {
    case 0:
      v = UniformColumn(n, -1'000'000, 1'000'000, rng);
      break;
    case 1:
      v = LognormalColumn(n, 6.0, 2.0, 1.0, rng);
      break;
    case 2:
      v = ZipfColumn(n, 40, 1.2, rng);
      break;
    case 3:
      v = ClusteredColumn(n, 6, 0, 10'000'000, 50'000.0, rng);
      break;
    default:
      v.assign(n, 42);  // Constant.
  }
  std::sort(v.begin(), v.end());
  return v;
}

class RmiPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(RmiPropertyTest, CdfIsMonotoneAndBounded) {
  const std::vector<Value> sorted = MakeSorted(GetParam(), 20'000, 77);
  const Rmi rmi = Rmi::Train(sorted, 64);
  Rng rng(99);
  double prev = -1.0;
  // Probe a sweep of increasing values straddling the data range.
  std::vector<Value> probes;
  for (int i = 0; i < 2000; ++i) {
    probes.push_back(rng.UniformInt(sorted.front() - 1000,
                                    sorted.back() + 1000));
  }
  std::sort(probes.begin(), probes.end());
  for (Value p : probes) {
    const double c = rmi.Cdf(p);
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0);
    EXPECT_GE(c, prev) << "CDF not monotone at " << p;
    prev = c;
  }
}

TEST_P(RmiPropertyTest, LookupBoundsContainTrueRank) {
  const std::vector<Value> sorted = MakeSorted(GetParam(), 10'000, 78);
  const Rmi rmi = Rmi::Train(sorted, 128);
  Rng rng(100);
  for (int i = 0; i < 3000; ++i) {
    const Value v = rng.UniformInt(sorted.front() - 10, sorted.back() + 10);
    const size_t truth = static_cast<size_t>(
        std::lower_bound(sorted.begin(), sorted.end(), v) - sorted.begin());
    const Rmi::Bounds b = rmi.Lookup(v);
    EXPECT_LE(b.lo, truth);
    EXPECT_GE(b.hi, truth);
    EXPECT_GE(b.pred, b.lo);
    EXPECT_LE(b.pred, b.hi);
  }
}

std::string RmiDistName(const ::testing::TestParamInfo<int>& info) {
  static constexpr const char* kNames[] = {"Uniform", "Lognormal", "Zipf",
                                           "Clustered", "Constant"};
  return kNames[info.param];
}

INSTANTIATE_TEST_SUITE_P(Distributions, RmiPropertyTest,
                         ::testing::Values(0, 1, 2, 3, 4), RmiDistName);

TEST(RmiTest, EmptyInput) {
  const Rmi rmi = Rmi::Train({}, 4);
  EXPECT_EQ(rmi.num_keys(), 0u);
  EXPECT_DOUBLE_EQ(rmi.Cdf(5), 0.0);
}

TEST(RmiTest, SingleKey) {
  const Rmi rmi = Rmi::Train({10}, 4);
  EXPECT_LE(rmi.Cdf(9), rmi.Cdf(10));
  EXPECT_LE(rmi.Cdf(10), rmi.Cdf(11));
  const Rmi::Bounds b = rmi.Lookup(10);
  EXPECT_LE(b.lo, 0u);
  EXPECT_GE(b.hi, 0u);
}

TEST(RmiTest, CdfSeparatesQuartilesOnSkewedData) {
  const std::vector<Value> sorted = MakeSorted(1, 50'000, 5);
  const Rmi rmi = Rmi::Train(sorted, 256);
  // The CDF at the true quartile values should be near 0.25/0.5/0.75.
  EXPECT_NEAR(rmi.Cdf(sorted[12'500]), 0.25, 0.05);
  EXPECT_NEAR(rmi.Cdf(sorted[25'000]), 0.50, 0.05);
  EXPECT_NEAR(rmi.Cdf(sorted[37'500]), 0.75, 0.05);
}

TEST(RmiTest, MemoryGrowsWithLeaves) {
  const std::vector<Value> sorted = MakeSorted(0, 10'000, 6);
  const Rmi small = Rmi::Train(sorted, 8);
  const Rmi large = Rmi::Train(sorted, 512);
  EXPECT_LT(small.MemoryUsageBytes(), large.MemoryUsageBytes());
}

}  // namespace
}  // namespace flood
