#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "query/scan_util.h"
#include "query/visitor.h"
#include "tests/test_util.h"

namespace flood {
namespace {

using testing::DataShape;
using testing::MakeTable;

/// Forces the block kernel for the duration of a test and restores the
/// default afterwards (the mode is process-global).
class ScopedScanKernel {
 public:
  explicit ScopedScanKernel(ScanKernel k) { SetScanKernel(k); }
  ~ScopedScanKernel() { SetScanKernel(ScanKernel::kBlock); }
};

TEST(ScanUtilTest, ExactRangeSkipsChecks) {
  const Table t = MakeTable(DataShape::kUniform, 1000, 2, 1);
  Query q = QueryBuilder(2).Range(0, 0, 10).Build();  // Barely matches.
  CountVisitor v;
  QueryStats stats;
  // Exact overrides the filter: all 1000 rows count.
  ScanRange(t, q, 0, 1000, /*exact=*/true, FilteredDims(q), v, &stats);
  EXPECT_EQ(v.count(), 1000u);
  EXPECT_EQ(stats.points_exact, 1000u);
  EXPECT_EQ(stats.points_scanned, 1000u);
}

TEST(ScanUtilTest, EmptyCheckSetActsExact) {
  const Table t = MakeTable(DataShape::kUniform, 100, 2, 2);
  const Query q(2);
  CountVisitor v;
  QueryStats stats;
  ScanRange(t, q, 10, 60, /*exact=*/false, std::vector<size_t>{}, v,
            &stats);
  EXPECT_EQ(v.count(), 50u);
  EXPECT_EQ(stats.points_exact, 50u);
}

TEST(ScanUtilTest, FilterCheckMatchesBruteForce) {
  const Table t = MakeTable(DataShape::kClustered, 9000, 3, 3);
  for (uint64_t seed = 0; seed < 10; ++seed) {
    const Query q = testing::RandomQuery(t, 100 + seed);
    CountVisitor v;
    QueryStats stats;
    ScanRange(t, q, 0, t.num_rows(), false, FilteredDims(q), v, &stats);
    EXPECT_EQ(v.count(), testing::BruteForce(t, q, 0).count);
    EXPECT_EQ(stats.points_matched, v.count());
  }
}

TEST(ScanUtilTest, BoundaryAlignmentBothKernels) {
  // Ranges crossing block (128) and 64-bit word boundaries.
  std::vector<Value> col(6000);
  for (size_t i = 0; i < col.size(); ++i) col[i] = static_cast<Value>(i);
  StatusOr<Table> t = Table::FromColumns({col});
  ASSERT_TRUE(t.ok());
  Query q = QueryBuilder(1).Range(0, 100, 4999).Build();
  const std::vector<size_t> dims{0};
  for (ScanKernel kernel : {ScanKernel::kNaive, ScanKernel::kBlock}) {
    ScopedScanKernel scoped(kernel);
    for (auto [begin, end] : std::vector<std::pair<size_t, size_t>>{
             {0, 6000}, {1, 2049}, {2047, 2049}, {63, 65}, {2048, 4096},
             {127, 129}, {128, 256}, {5999, 6000}, {0, 1}, {100, 100}}) {
      CountVisitor v;
      ScanRange(*t, q, begin, end, false, dims, v, nullptr);
      uint64_t expected = 0;
      for (size_t i = begin; i < end; ++i) {
        if (col[i] >= 100 && col[i] <= 4999) ++expected;
      }
      EXPECT_EQ(v.count(), expected) << begin << ".." << end;
    }
  }
}

TEST(ScanUtilTest, MultiDimChecksAndCombine) {
  StatusOr<Table> t = Table::FromColumns({{1, 2, 3, 4}, {10, 20, 30, 40}});
  ASSERT_TRUE(t.ok());
  Query q = QueryBuilder(2).Range(0, 2, 4).Range(1, 10, 30).Build();
  CollectVisitor v;
  const std::vector<size_t> dims{0, 1};
  ScanRange(*t, q, 0, 4, false, dims, v, nullptr);
  // Rows 1 (2,20) and 2 (3,30) match.
  ASSERT_EQ(v.rows().size(), 2u);
  EXPECT_EQ(v.rows()[0], 1u);
  EXPECT_EQ(v.rows()[1], 2u);
}

TEST(ScanUtilTest, FilteredDimsListsOnlyFiltered) {
  Query q = QueryBuilder(4).Range(1, 0, 5).Equals(3, 2).Build();
  const std::vector<size_t> dims = FilteredDims(q);
  ASSERT_EQ(dims.size(), 2u);
  EXPECT_EQ(dims[0], 1u);
  EXPECT_EQ(dims[1], 3u);
}

// ---------------------------------------------------------------------------
// Block kernel vs naive reference equivalence.
// ---------------------------------------------------------------------------

/// A column whose every full block has exactly `w` delta bits: the first
/// element pins the block minimum, the second pins the maximum delta, the
/// rest are uniform within the span. Block bases differ so zone maps have
/// distinct ranges.
std::vector<Value> WidthControlledColumn(uint32_t w, size_t n, Rng& rng) {
  constexpr size_t kB = Column::kBlockSize;
  std::vector<Value> v(n);
  for (size_t begin = 0; begin < n; begin += kB) {
    const size_t end = std::min(n, begin + kB);
    const size_t block = begin / kB;
    Value base;
    uint64_t mask;
    if (w >= 64) {
      base = kValueMin;
      mask = ~uint64_t{0};
    } else {
      base = static_cast<Value>(block) * 1'000'000;
      mask = w == 0 ? 0 : (uint64_t{1} << w) - 1;
    }
    for (size_t i = begin; i < end; ++i) {
      uint64_t delta = rng.Next() & mask;
      if (i == begin) {
        delta = 0;
      } else if (i == begin + 1) {
        delta = mask;
      }
      v[i] = static_cast<Value>(static_cast<uint64_t>(base) + delta);
    }
  }
  return v;
}

/// Runs naive and block kernels over the same range and asserts identical
/// matched rows, sums, and counter totals.
void ExpectKernelsAgree(const Table& t, const Query& q, size_t begin,
                        size_t end, std::span<const size_t> dims) {
  CollectVisitor naive_rows;
  SumVisitor naive_sum(&t.column(0));
  QueryStats naive_stats;
  {
    ScopedScanKernel scoped(ScanKernel::kNaive);
    ScanRange(t, q, begin, end, false, dims, naive_rows, &naive_stats);
    ScanRange(t, q, begin, end, false, dims, naive_sum, nullptr);
  }
  CollectVisitor block_rows;
  SumVisitor block_sum(&t.column(0));
  QueryStats block_stats;
  {
    ScopedScanKernel scoped(ScanKernel::kBlock);
    ScanRange(t, q, begin, end, false, dims, block_rows, &block_stats);
    ScanRange(t, q, begin, end, false, dims, block_sum, nullptr);
  }
  ASSERT_EQ(naive_rows.rows(), block_rows.rows());
  EXPECT_EQ(naive_sum.sum(), block_sum.sum());
  EXPECT_EQ(naive_stats.points_scanned, block_stats.points_scanned);
  EXPECT_EQ(naive_stats.points_matched, block_stats.points_matched);
  EXPECT_EQ(naive_stats.ranges_scanned, block_stats.ranges_scanned);
  EXPECT_EQ(naive_stats.blocks_skipped, 0u);
  EXPECT_EQ(naive_stats.blocks_exact, 0u);
}

TEST(ScanKernelEquivalenceTest, AllBitWidthsBothEncodings) {
  constexpr size_t kB = Column::kBlockSize;
  const size_t n = 5 * kB + 37;  // Trailing partial block.
  for (uint32_t w = 0; w <= 64; ++w) {
    Rng rng(1000 + w);
    std::vector<Value> c0 = WidthControlledColumn(w, n, rng);
    std::vector<Value> c1 = WidthControlledColumn(w / 2, n, rng);
    // Ranges spanning roughly half of each column's value span.
    std::vector<Value> sorted = c0;
    std::sort(sorted.begin(), sorted.end());
    const Value lo = sorted[n / 4];
    const Value hi = sorted[3 * n / 4];
    std::vector<Value> sorted1 = c1;
    std::sort(sorted1.begin(), sorted1.end());
    for (Column::Encoding enc :
         {Column::Encoding::kPlain, Column::Encoding::kBlockDelta}) {
      StatusOr<Table> t = Table::FromColumns({c0, c1}, enc);
      ASSERT_TRUE(t.ok());
      const Query q = QueryBuilder(2)
                          .Range(0, lo, hi)
                          .Range(1, sorted1[n / 10], sorted1[9 * n / 10])
                          .Build();
      const std::vector<size_t> dims = FilteredDims(q);
      // Full range, block-straddling sub-ranges, and intra-block ranges.
      for (auto [begin, end] : std::vector<std::pair<size_t, size_t>>{
               {0, n}, {1, n - 1}, {kB - 1, kB + 1}, {kB / 2, 3 * kB + 5},
               {2 * kB, 3 * kB}, {n - 5, n}}) {
        SCOPED_TRACE("width=" + std::to_string(w) + " range=" +
                     std::to_string(begin) + ".." + std::to_string(end));
        ExpectKernelsAgree(*t, q, begin, end, dims);
      }
    }
  }
}

TEST(ScanKernelEquivalenceTest, RandomQueriesOnShapedData) {
  for (DataShape shape : {DataShape::kUniform, DataShape::kClustered,
                          DataShape::kDuplicates, DataShape::kCorrelated}) {
    const Table t = MakeTable(shape, 3000, 3, 7);
    for (uint64_t seed = 0; seed < 8; ++seed) {
      const Query q = testing::RandomQuery(t, 400 + seed);
      const std::vector<size_t> dims = FilteredDims(q);
      if (dims.empty()) continue;
      ExpectKernelsAgree(t, q, 0, t.num_rows(), dims);
      ExpectKernelsAgree(t, q, 17, t.num_rows() - 211, dims);
    }
  }
}

TEST(ScanKernelTest, ZoneMapSkipAndExactCounters) {
  // Sorted column: each 128-block covers a distinct narrow range.
  std::vector<Value> col(1280);
  for (size_t i = 0; i < col.size(); ++i) col[i] = static_cast<Value>(i);
  StatusOr<Table> t =
      Table::FromColumns({col}, Column::Encoding::kBlockDelta);
  ASSERT_TRUE(t.ok());
  const Query q = QueryBuilder(1).Range(0, 256, 800).Build();
  const std::vector<size_t> dims{0};

  ScopedScanKernel scoped(ScanKernel::kBlock);
  {
    CountVisitor v;
    QueryStats stats;
    ScanRange(*t, q, 0, 1280, false, dims, v, &stats);
    EXPECT_EQ(v.count(), 545u);  // 256..800 inclusive.
    // Blocks 0-1 and 7-9 are disjoint with [256, 800]; blocks 2-5 are
    // fully contained; block 6 (768..895) needs decoding.
    EXPECT_EQ(stats.blocks_skipped, 5u);
    EXPECT_EQ(stats.blocks_exact, 4u);
    EXPECT_EQ(stats.points_scanned, 1280u);
    EXPECT_EQ(stats.points_matched, 545u);
  }
  {
    // Clipped scan range: zone maps still apply to partial blocks.
    CountVisitor v;
    QueryStats stats;
    ScanRange(*t, q, 300, 900, false, dims, v, &stats);
    EXPECT_EQ(v.count(), 501u);  // 300..800 inclusive.
    EXPECT_EQ(stats.blocks_skipped, 1u);  // Clipped block 7 (896..899).
    EXPECT_EQ(stats.blocks_exact, 4u);    // Blocks 2-5 (clipped block 2).
  }
  {
    // The naive kernel never touches the block counters.
    ScopedScanKernel naive(ScanKernel::kNaive);
    CountVisitor v;
    QueryStats stats;
    ScanRange(*t, q, 0, 1280, false, dims, v, &stats);
    EXPECT_EQ(v.count(), 545u);
    EXPECT_EQ(stats.blocks_skipped, 0u);
    EXPECT_EQ(stats.blocks_exact, 0u);
  }
}

TEST(ScanKernelTest, EnvToggleDefaultsToBlock) {
  // The suite runs without FLOOD_SCAN_KERNEL set, so the resolved default
  // must be the block kernel.
  SetScanKernel(ScanKernel::kBlock);
  EXPECT_EQ(ActiveScanKernel(), ScanKernel::kBlock);
  SetScanKernel(ScanKernel::kNaive);
  EXPECT_EQ(ActiveScanKernel(), ScanKernel::kNaive);
  SetScanKernel(ScanKernel::kBlock);
}

// ---------------------------------------------------------------------------
// Visitor word-level contract.
// ---------------------------------------------------------------------------

TEST(VisitorTest, SumVisitorUsesPrefixSumsForExactRanges) {
  std::vector<Value> col{5, 10, 15, 20, 25};
  const Column column = Column::FromValues(col);
  const PrefixSums sums(col);
  SumVisitor with(&column);
  with.set_prefix_sums(&sums);
  with.VisitExactRange(1, 4);
  EXPECT_EQ(with.sum(), 45);
  SumVisitor without(&column);
  without.VisitExactRange(1, 4);
  EXPECT_EQ(without.sum(), 45);
  without.VisitRow(0);
  EXPECT_EQ(without.sum(), 50);
}

TEST(VisitorTest, CountVisitorPopcountsMatchWords) {
  CountVisitor v;
  v.VisitMatchWord(0, 0b1011);
  v.VisitMatchWord(64, ~uint64_t{0});
  EXPECT_EQ(v.count(), 67u);
}

TEST(VisitorTest, SumVisitorFullWordUsesPrefixSums) {
  std::vector<Value> col(128);
  for (size_t i = 0; i < col.size(); ++i) col[i] = static_cast<Value>(i);
  const Column column = Column::FromValues(col);
  const PrefixSums sums(col);
  SumVisitor v(&column);
  v.set_prefix_sums(&sums);
  v.VisitMatchWord(0, ~uint64_t{0});  // Rows 0..63 -> prefix-sum path.
  EXPECT_EQ(v.sum(), 63 * 64 / 2);
  v.VisitMatchWord(64, 0b101);  // Rows 64 and 66 -> per-bit path.
  EXPECT_EQ(v.sum(), 63 * 64 / 2 + 64 + 66);
}

TEST(VisitorTest, CollectVisitorExpandsMatchWordsInOrder) {
  CollectVisitor v;
  v.VisitMatchWord(128, (uint64_t{1} << 5) | (uint64_t{1} << 63));
  ASSERT_EQ(v.rows().size(), 2u);
  EXPECT_EQ(v.rows()[0], 133u);
  EXPECT_EQ(v.rows()[1], 191u);
}

TEST(VisitorTest, KindsReported) {
  const Column c = Column::FromValues({1});
  EXPECT_EQ(CountVisitor().kind(), Visitor::Kind::kCount);
  EXPECT_EQ(SumVisitor(&c).kind(), Visitor::Kind::kSum);
  EXPECT_EQ(CollectVisitor().kind(), Visitor::Kind::kCollect);
}

}  // namespace
}  // namespace flood
