#include <gtest/gtest.h>

#include "query/scan_util.h"
#include "query/visitor.h"
#include "tests/test_util.h"

namespace flood {
namespace {

using testing::DataShape;
using testing::MakeTable;

TEST(ScanUtilTest, ExactRangeSkipsChecks) {
  const Table t = MakeTable(DataShape::kUniform, 1000, 2, 1);
  Query q = QueryBuilder(2).Range(0, 0, 10).Build();  // Barely matches.
  CountVisitor v;
  QueryStats stats;
  // Exact overrides the filter: all 1000 rows count.
  ScanRange(t, q, 0, 1000, /*exact=*/true, FilteredDims(q), v, &stats);
  EXPECT_EQ(v.count(), 1000u);
  EXPECT_EQ(stats.points_exact, 1000u);
  EXPECT_EQ(stats.points_scanned, 1000u);
}

TEST(ScanUtilTest, EmptyCheckSetActsExact) {
  const Table t = MakeTable(DataShape::kUniform, 100, 2, 2);
  const Query q(2);
  CountVisitor v;
  QueryStats stats;
  ScanRange(t, q, 10, 60, /*exact=*/false, {}, v, &stats);
  EXPECT_EQ(v.count(), 50u);
  EXPECT_EQ(stats.points_exact, 50u);
}

TEST(ScanUtilTest, FilterCheckMatchesBruteForce) {
  const Table t = MakeTable(DataShape::kClustered, 9000, 3, 3);
  for (uint64_t seed = 0; seed < 10; ++seed) {
    const Query q = testing::RandomQuery(t, 100 + seed);
    CountVisitor v;
    QueryStats stats;
    ScanRange(t, q, 0, t.num_rows(), false, FilteredDims(q), v, &stats);
    EXPECT_EQ(v.count(), testing::BruteForce(t, q, 0).count);
    EXPECT_EQ(stats.points_matched, v.count());
  }
}

TEST(ScanUtilTest, ChunkBoundaryAlignment) {
  // Ranges crossing the 2048-row chunk and 64-bit word boundaries.
  std::vector<Value> col(6000);
  for (size_t i = 0; i < col.size(); ++i) col[i] = static_cast<Value>(i);
  StatusOr<Table> t = Table::FromColumns({col});
  ASSERT_TRUE(t.ok());
  Query q = QueryBuilder(1).Range(0, 100, 4999).Build();
  for (auto [begin, end] : std::vector<std::pair<size_t, size_t>>{
           {0, 6000}, {1, 2049}, {2047, 2049}, {63, 65}, {2048, 4096},
           {5999, 6000}, {0, 1}, {100, 100}}) {
    CountVisitor v;
    ScanRange(*t, q, begin, end, false, {0}, v, nullptr);
    uint64_t expected = 0;
    for (size_t i = begin; i < end; ++i) {
      if (col[i] >= 100 && col[i] <= 4999) ++expected;
    }
    EXPECT_EQ(v.count(), expected) << begin << ".." << end;
  }
}

TEST(ScanUtilTest, MultiDimChecksAndCombine) {
  StatusOr<Table> t = Table::FromColumns({{1, 2, 3, 4}, {10, 20, 30, 40}});
  ASSERT_TRUE(t.ok());
  Query q = QueryBuilder(2).Range(0, 2, 4).Range(1, 10, 30).Build();
  CollectVisitor v;
  ScanRange(*t, q, 0, 4, false, {0, 1}, v, nullptr);
  // Rows 1 (2,20) and 2 (3,30) match.
  ASSERT_EQ(v.rows().size(), 2u);
  EXPECT_EQ(v.rows()[0], 1u);
  EXPECT_EQ(v.rows()[1], 2u);
}

TEST(ScanUtilTest, FilteredDimsListsOnlyFiltered) {
  Query q = QueryBuilder(4).Range(1, 0, 5).Equals(3, 2).Build();
  const std::vector<size_t> dims = FilteredDims(q);
  ASSERT_EQ(dims.size(), 2u);
  EXPECT_EQ(dims[0], 1u);
  EXPECT_EQ(dims[1], 3u);
}

TEST(VisitorTest, SumVisitorUsesPrefixSumsForExactRanges) {
  std::vector<Value> col{5, 10, 15, 20, 25};
  const Column column = Column::FromValues(col);
  const PrefixSums sums(col);
  SumVisitor with(&column);
  with.set_prefix_sums(&sums);
  with.VisitExactRange(1, 4);
  EXPECT_EQ(with.sum(), 45);
  SumVisitor without(&column);
  without.VisitExactRange(1, 4);
  EXPECT_EQ(without.sum(), 45);
  without.VisitRow(0);
  EXPECT_EQ(without.sum(), 50);
}

TEST(VisitorTest, KindsReported) {
  const Column c = Column::FromValues({1});
  EXPECT_EQ(CountVisitor().kind(), Visitor::Kind::kCount);
  EXPECT_EQ(SumVisitor(&c).kind(), Visitor::Kind::kSum);
  EXPECT_EQ(CollectVisitor().kind(), Visitor::Kind::kCollect);
}

}  // namespace
}  // namespace flood
