#include <gtest/gtest.h>

#include <algorithm>
#include <utility>

#include "common/rng.h"
#include "query/scan_util.h"
#include "query/visitor.h"
#include "tests/test_util.h"

namespace flood {
namespace {

using testing::DataShape;
using testing::MakeTable;

/// Forces a scan kernel for the duration of a test and restores whatever
/// was active before (the mode is process-global, and the suite may run
/// with FLOOD_SCAN_KERNEL forcing any kernel).
class ScopedScanKernel {
 public:
  explicit ScopedScanKernel(ScanKernel k) : previous_(ActiveScanKernel()) {
    SetScanKernel(k);
  }
  ~ScopedScanKernel() { SetScanKernel(previous_); }

 private:
  ScanKernel previous_;
};

/// True when the simd kernel's vector paths can actually execute here.
bool SimdAvailable() {
  return simd::ActiveSimdLevel() >= simd::SimdLevel::kAvx2;
}

TEST(ScanUtilTest, ExactRangeSkipsChecks) {
  const Table t = MakeTable(DataShape::kUniform, 1000, 2, 1);
  Query q = QueryBuilder(2).Range(0, 0, 10).Build();  // Barely matches.
  CountVisitor v;
  QueryStats stats;
  // Exact overrides the filter: all 1000 rows count.
  ScanRange(t, q, 0, 1000, /*exact=*/true, FilteredDims(q), v, &stats);
  EXPECT_EQ(v.count(), 1000u);
  EXPECT_EQ(stats.points_exact, 1000u);
  EXPECT_EQ(stats.points_scanned, 1000u);
}

TEST(ScanUtilTest, EmptyCheckSetActsExact) {
  const Table t = MakeTable(DataShape::kUniform, 100, 2, 2);
  const Query q(2);
  CountVisitor v;
  QueryStats stats;
  ScanRange(t, q, 10, 60, /*exact=*/false, std::vector<size_t>{}, v,
            &stats);
  EXPECT_EQ(v.count(), 50u);
  EXPECT_EQ(stats.points_exact, 50u);
}

TEST(ScanUtilTest, FilterCheckMatchesBruteForce) {
  const Table t = MakeTable(DataShape::kClustered, 9000, 3, 3);
  for (uint64_t seed = 0; seed < 10; ++seed) {
    const Query q = testing::RandomQuery(t, 100 + seed);
    CountVisitor v;
    QueryStats stats;
    ScanRange(t, q, 0, t.num_rows(), false, FilteredDims(q), v, &stats);
    EXPECT_EQ(v.count(), testing::BruteForce(t, q, 0).count);
    EXPECT_EQ(stats.points_matched, v.count());
  }
}

TEST(ScanUtilTest, BoundaryAlignmentBothKernels) {
  // Ranges crossing block (128) and 64-bit word boundaries.
  std::vector<Value> col(6000);
  for (size_t i = 0; i < col.size(); ++i) col[i] = static_cast<Value>(i);
  StatusOr<Table> t = Table::FromColumns({col});
  ASSERT_TRUE(t.ok());
  Query q = QueryBuilder(1).Range(0, 100, 4999).Build();
  const std::vector<size_t> dims{0};
  for (ScanKernel kernel :
       {ScanKernel::kNaive, ScanKernel::kBlock, ScanKernel::kSimd}) {
    ScopedScanKernel scoped(kernel);
    for (auto [begin, end] : std::vector<std::pair<size_t, size_t>>{
             {0, 6000}, {1, 2049}, {2047, 2049}, {63, 65}, {2048, 4096},
             {127, 129}, {128, 256}, {5999, 6000}, {0, 1}, {100, 100}}) {
      CountVisitor v;
      ScanRange(*t, q, begin, end, false, dims, v, nullptr);
      uint64_t expected = 0;
      for (size_t i = begin; i < end; ++i) {
        if (col[i] >= 100 && col[i] <= 4999) ++expected;
      }
      EXPECT_EQ(v.count(), expected) << begin << ".." << end;
    }
  }
}

TEST(ScanUtilTest, MultiDimChecksAndCombine) {
  StatusOr<Table> t = Table::FromColumns({{1, 2, 3, 4}, {10, 20, 30, 40}});
  ASSERT_TRUE(t.ok());
  Query q = QueryBuilder(2).Range(0, 2, 4).Range(1, 10, 30).Build();
  CollectVisitor v;
  const std::vector<size_t> dims{0, 1};
  ScanRange(*t, q, 0, 4, false, dims, v, nullptr);
  // Rows 1 (2,20) and 2 (3,30) match.
  ASSERT_EQ(v.rows().size(), 2u);
  EXPECT_EQ(v.rows()[0], 1u);
  EXPECT_EQ(v.rows()[1], 2u);
}

TEST(ScanUtilTest, FilteredDimsListsOnlyFiltered) {
  Query q = QueryBuilder(4).Range(1, 0, 5).Equals(3, 2).Build();
  const std::vector<size_t> dims = FilteredDims(q);
  ASSERT_EQ(dims.size(), 2u);
  EXPECT_EQ(dims[0], 1u);
  EXPECT_EQ(dims[1], 3u);
}

// ---------------------------------------------------------------------------
// Block / simd kernels vs naive reference equivalence.
// ---------------------------------------------------------------------------

/// A column whose every full block has exactly `w` delta bits: the first
/// element pins the block minimum, the second pins the maximum delta, the
/// rest are uniform within the span. Block bases differ so zone maps have
/// distinct ranges.
std::vector<Value> WidthControlledColumn(uint32_t w, size_t n, Rng& rng) {
  constexpr size_t kB = Column::kBlockSize;
  std::vector<Value> v(n);
  for (size_t begin = 0; begin < n; begin += kB) {
    const size_t end = std::min(n, begin + kB);
    const size_t block = begin / kB;
    Value base;
    uint64_t mask;
    if (w >= 64) {
      base = kValueMin;
      mask = ~uint64_t{0};
    } else {
      base = static_cast<Value>(block) * 1'000'000;
      mask = w == 0 ? 0 : (uint64_t{1} << w) - 1;
    }
    for (size_t i = begin; i < end; ++i) {
      uint64_t delta = rng.Next() & mask;
      if (i == begin) {
        delta = 0;
      } else if (i == begin + 1) {
        delta = mask;
      }
      v[i] = static_cast<Value>(static_cast<uint64_t>(base) + delta);
    }
  }
  return v;
}

/// One kernel's observable scan output: matched rows, COUNT, SUM, stats.
struct KernelRun {
  std::vector<RowId> rows;
  uint64_t count = 0;
  int64_t sum = 0;
  QueryStats stats;
};

KernelRun RunKernel(ScanKernel kernel, const Table& t, const Query& q,
                    size_t begin, size_t end,
                    std::span<const size_t> dims) {
  ScopedScanKernel scoped(kernel);
  KernelRun run;
  CollectVisitor collect;
  ScanRange(t, q, begin, end, false, dims, collect, &run.stats);
  run.rows = collect.rows();
  CountVisitor count;
  ScanRange(t, q, begin, end, false, dims, count, nullptr);
  run.count = count.count();
  SumVisitor sum(&t.column(0));
  ScanRange(t, q, begin, end, false, dims, sum, nullptr);
  run.sum = sum.sum();
  return run;
}

/// Runs all three kernels over the same range and asserts the block and
/// simd kernels are bit-identical to the naive reference: same matched
/// rows, counts, sums, and point counters. The simd kernel must also
/// reproduce the block kernel's zone-map outcomes exactly.
void ExpectKernelsAgree(const Table& t, const Query& q, size_t begin,
                        size_t end, std::span<const size_t> dims) {
  const KernelRun naive = RunKernel(ScanKernel::kNaive, t, q, begin, end,
                                    dims);
  EXPECT_EQ(naive.stats.blocks_skipped, 0u);
  EXPECT_EQ(naive.stats.blocks_exact, 0u);
  EXPECT_EQ(naive.stats.simd_blocks, 0u);
  const KernelRun block = RunKernel(ScanKernel::kBlock, t, q, begin, end,
                                    dims);
  const KernelRun simd = RunKernel(ScanKernel::kSimd, t, q, begin, end,
                                   dims);
  const std::pair<const char*, const KernelRun*> runs[] = {
      {"block", &block}, {"simd", &simd}};
  for (const auto& [name, run_ptr] : runs) {
    SCOPED_TRACE(name);
    const KernelRun& run = *run_ptr;
    ASSERT_EQ(naive.rows, run.rows);
    EXPECT_EQ(naive.count, run.count);
    EXPECT_EQ(naive.sum, run.sum);
    EXPECT_EQ(naive.stats.points_scanned, run.stats.points_scanned);
    EXPECT_EQ(naive.stats.points_matched, run.stats.points_matched);
    EXPECT_EQ(naive.stats.ranges_scanned, run.stats.ranges_scanned);
  }
  // Zone-map outcomes must not depend on the (block vs simd) filter
  // implementation; only the simd kernel counts vector-filtered blocks.
  EXPECT_EQ(block.stats.blocks_skipped, simd.stats.blocks_skipped);
  EXPECT_EQ(block.stats.blocks_exact, simd.stats.blocks_exact);
  EXPECT_EQ(block.stats.simd_blocks, 0u);
  if (SimdAvailable() && end - begin >= 32 && dims.size() <= 64) {
    // Every zone-surviving block that needed filtering went through the
    // vector path.
    const size_t blocks = (end - 1) / Column::kBlockSize -
                          begin / Column::kBlockSize + 1;
    EXPECT_EQ(simd.stats.simd_blocks,
              blocks - simd.stats.blocks_skipped - simd.stats.blocks_exact);
  } else {
    EXPECT_EQ(simd.stats.simd_blocks, 0u);
  }
}

TEST(ScanKernelEquivalenceTest, AllBitWidthsBothEncodings) {
  constexpr size_t kB = Column::kBlockSize;
  const size_t n = 5 * kB + 37;  // Trailing partial block.
  for (uint32_t w = 0; w <= 64; ++w) {
    Rng rng(1000 + w);
    std::vector<Value> c0 = WidthControlledColumn(w, n, rng);
    std::vector<Value> c1 = WidthControlledColumn(w / 2, n, rng);
    // Ranges spanning roughly half of each column's value span.
    std::vector<Value> sorted = c0;
    std::sort(sorted.begin(), sorted.end());
    const Value lo = sorted[n / 4];
    const Value hi = sorted[3 * n / 4];
    std::vector<Value> sorted1 = c1;
    std::sort(sorted1.begin(), sorted1.end());
    for (Column::Encoding enc :
         {Column::Encoding::kPlain, Column::Encoding::kBlockDelta}) {
      StatusOr<Table> t = Table::FromColumns({c0, c1}, enc);
      ASSERT_TRUE(t.ok());
      const Query q = QueryBuilder(2)
                          .Range(0, lo, hi)
                          .Range(1, sorted1[n / 10], sorted1[9 * n / 10])
                          .Build();
      const std::vector<size_t> dims = FilteredDims(q);
      // Full range, block-straddling sub-ranges, and intra-block ranges.
      for (auto [begin, end] : std::vector<std::pair<size_t, size_t>>{
               {0, n}, {1, n - 1}, {kB - 1, kB + 1}, {kB / 2, 3 * kB + 5},
               {2 * kB, 3 * kB}, {n - 5, n}}) {
        SCOPED_TRACE("width=" + std::to_string(w) + " range=" +
                     std::to_string(begin) + ".." + std::to_string(end));
        ExpectKernelsAgree(*t, q, begin, end, dims);
      }
    }
  }
}

TEST(ScanKernelEquivalenceTest, RandomQueriesOnShapedData) {
  for (DataShape shape : {DataShape::kUniform, DataShape::kClustered,
                          DataShape::kDuplicates, DataShape::kCorrelated}) {
    const Table t = MakeTable(shape, 3000, 3, 7);
    for (uint64_t seed = 0; seed < 8; ++seed) {
      const Query q = testing::RandomQuery(t, 400 + seed);
      const std::vector<size_t> dims = FilteredDims(q);
      if (dims.empty()) continue;
      ExpectKernelsAgree(t, q, 0, t.num_rows(), dims);
      ExpectKernelsAgree(t, q, 17, t.num_rows() - 211, dims);
    }
  }
}

TEST(ScanKernelTest, ZoneMapSkipAndExactCounters) {
  // Sorted column: each 128-block covers a distinct narrow range.
  std::vector<Value> col(1280);
  for (size_t i = 0; i < col.size(); ++i) col[i] = static_cast<Value>(i);
  StatusOr<Table> t =
      Table::FromColumns({col}, Column::Encoding::kBlockDelta);
  ASSERT_TRUE(t.ok());
  const Query q = QueryBuilder(1).Range(0, 256, 800).Build();
  const std::vector<size_t> dims{0};

  ScopedScanKernel scoped(ScanKernel::kBlock);
  {
    CountVisitor v;
    QueryStats stats;
    ScanRange(*t, q, 0, 1280, false, dims, v, &stats);
    EXPECT_EQ(v.count(), 545u);  // 256..800 inclusive.
    // Blocks 0-1 and 7-9 are disjoint with [256, 800]; blocks 2-5 are
    // fully contained; block 6 (768..895) needs decoding.
    EXPECT_EQ(stats.blocks_skipped, 5u);
    EXPECT_EQ(stats.blocks_exact, 4u);
    EXPECT_EQ(stats.points_scanned, 1280u);
    EXPECT_EQ(stats.points_matched, 545u);
  }
  {
    // Clipped scan range: zone maps still apply to partial blocks.
    CountVisitor v;
    QueryStats stats;
    ScanRange(*t, q, 300, 900, false, dims, v, &stats);
    EXPECT_EQ(v.count(), 501u);  // 300..800 inclusive.
    EXPECT_EQ(stats.blocks_skipped, 1u);  // Clipped block 7 (896..899).
    EXPECT_EQ(stats.blocks_exact, 4u);    // Blocks 2-5 (clipped block 2).
  }
  {
    // The naive kernel never touches the block counters.
    ScopedScanKernel naive(ScanKernel::kNaive);
    CountVisitor v;
    QueryStats stats;
    ScanRange(*t, q, 0, 1280, false, dims, v, &stats);
    EXPECT_EQ(v.count(), 545u);
    EXPECT_EQ(stats.blocks_skipped, 0u);
    EXPECT_EQ(stats.blocks_exact, 0u);
  }
  {
    // The simd kernel reproduces the zone-map outcomes and counts the one
    // block (6: rows 768..895) that needed vector filtering.
    ScopedScanKernel simd_kernel(ScanKernel::kSimd);
    CountVisitor v;
    QueryStats stats;
    ScanRange(*t, q, 0, 1280, false, dims, v, &stats);
    EXPECT_EQ(v.count(), 545u);
    EXPECT_EQ(stats.blocks_skipped, 5u);
    EXPECT_EQ(stats.blocks_exact, 4u);
    EXPECT_EQ(stats.simd_blocks, SimdAvailable() ? 1u : 0u);
  }
}

TEST(ScanKernelTest, SimdDispatchFallsBackWhenIsaMasked) {
  // With the vector ISA masked off, the simd kernel selection must fall
  // back to the scalar block kernel at call time: identical results and
  // zone-map counters, and no block ever counted as vector-filtered.
  const Table t = MakeTable(DataShape::kClustered, 4096, 3, 11);
  const Query q = testing::RandomQuery(t, 77);
  const std::vector<size_t> dims = FilteredDims(q);
  ASSERT_FALSE(dims.empty());
  ScopedScanKernel scoped(ScanKernel::kSimd);

  CollectVisitor unmasked;
  QueryStats unmasked_stats;
  ScanRange(t, q, 0, t.num_rows(), false, dims, unmasked, &unmasked_stats);

  simd::SetSimdLevelForTest(simd::SimdLevel::kScalar);
  ASSERT_EQ(simd::ActiveSimdLevel(), simd::SimdLevel::kScalar);
  CollectVisitor masked;
  QueryStats masked_stats;
  ScanRange(t, q, 0, t.num_rows(), false, dims, masked, &masked_stats);
  simd::SetSimdLevelForTest(simd::DetectedSimdLevel());

  EXPECT_EQ(unmasked.rows(), masked.rows());
  EXPECT_EQ(unmasked_stats.points_matched, masked_stats.points_matched);
  EXPECT_EQ(unmasked_stats.blocks_skipped, masked_stats.blocks_skipped);
  EXPECT_EQ(unmasked_stats.blocks_exact, masked_stats.blocks_exact);
  EXPECT_EQ(masked_stats.simd_blocks, 0u);
  // The cap only masks: it can never exceed what cpuid detected.
  simd::SetSimdLevelForTest(simd::SimdLevel::kAvx512);
  EXPECT_LE(simd::ActiveSimdLevel(), simd::DetectedSimdLevel());
  simd::SetSimdLevelForTest(simd::DetectedSimdLevel());
}

TEST(ScanKernelTest, KernelToggleRoundTrips) {
  // The kernel toggle (FLOOD_SCAN_KERNEL's backing switch) must report
  // exactly what was set, for all three kernels.
  ScopedScanKernel scoped(ScanKernel::kBlock);
  for (ScanKernel k :
       {ScanKernel::kNaive, ScanKernel::kSimd, ScanKernel::kBlock}) {
    SetScanKernel(k);
    EXPECT_EQ(ActiveScanKernel(), k);
  }
}

// ---------------------------------------------------------------------------
// Visitor word-level contract.
// ---------------------------------------------------------------------------

TEST(VisitorTest, SumVisitorUsesPrefixSumsForExactRanges) {
  std::vector<Value> col{5, 10, 15, 20, 25};
  const Column column = Column::FromValues(col);
  const PrefixSums sums(col);
  SumVisitor with(&column);
  with.set_prefix_sums(&sums);
  with.VisitExactRange(1, 4);
  EXPECT_EQ(with.sum(), 45);
  SumVisitor without(&column);
  without.VisitExactRange(1, 4);
  EXPECT_EQ(without.sum(), 45);
  without.VisitRow(0);
  EXPECT_EQ(without.sum(), 50);
}

TEST(VisitorTest, CountVisitorPopcountsMatchWords) {
  CountVisitor v;
  v.VisitMatchWord(0, 0b1011);
  v.VisitMatchWord(64, ~uint64_t{0});
  EXPECT_EQ(v.count(), 67u);
}

TEST(VisitorTest, SumVisitorFullWordUsesPrefixSums) {
  std::vector<Value> col(128);
  for (size_t i = 0; i < col.size(); ++i) col[i] = static_cast<Value>(i);
  const Column column = Column::FromValues(col);
  const PrefixSums sums(col);
  SumVisitor v(&column);
  v.set_prefix_sums(&sums);
  v.VisitMatchWord(0, ~uint64_t{0});  // Rows 0..63 -> prefix-sum path.
  EXPECT_EQ(v.sum(), 63 * 64 / 2);
  v.VisitMatchWord(64, 0b101);  // Rows 64 and 66 -> per-bit path.
  EXPECT_EQ(v.sum(), 63 * 64 / 2 + 64 + 66);
}

TEST(VisitorTest, CollectVisitorExpandsMatchWordsInOrder) {
  CollectVisitor v;
  v.VisitMatchWord(128, (uint64_t{1} << 5) | (uint64_t{1} << 63));
  ASSERT_EQ(v.rows().size(), 2u);
  EXPECT_EQ(v.rows()[0], 133u);
  EXPECT_EQ(v.rows()[1], 191u);
}

TEST(VisitorTest, CountVisitorPopcountsMatchBitmaps) {
  CountVisitor v;
  // Zero words may appear inside a bitmap (unlike VisitMatchWord).
  const uint64_t bitmap[2] = {0, 0b1011};
  v.VisitMatchBitmap(0, 128, bitmap);
  EXPECT_EQ(v.count(), 3u);
  const uint64_t partial[1] = {0x7f};
  v.VisitMatchBitmap(128, 7, partial);
  EXPECT_EQ(v.count(), 10u);
}

TEST(VisitorTest, SumVisitorBitmapMatchesPerWordPath) {
  // The vectorized bitmap reduction must agree with the per-word contract
  // for every delivery shape: full words (prefix-sum path), partial words
  // (masked vector sum), zero words, and clipped / unaligned ranges that
  // force the fallback.
  std::vector<Value> col(256);
  Rng rng(99);
  for (auto& v : col) v = static_cast<Value>(rng.Next() % 100000) - 50000;
  const Column column = Column::FromValues(col);
  const PrefixSums sums(col);
  const uint64_t bitmap[2] = {~uint64_t{0}, 0xdeadbeefcafe1234ull};
  const struct {
    RowId begin;
    size_t n;
  } cases[] = {{0, 128}, {128, 128}, {128, 100}, {64, 128}, {3, 70}};
  for (const auto& c : cases) {
    SCOPED_TRACE(std::to_string(c.begin) + "+" + std::to_string(c.n));
    uint64_t clipped[2];
    clipped[0] = bitmap[0];
    clipped[1] = c.n > 64 ? bitmap[1] : 0;
    if (c.n % 64 != 0) {
      clipped[(c.n - 1) / 64] &= (uint64_t{1} << (c.n % 64)) - 1;
    }
    SumVisitor vectorized(&column);
    vectorized.set_prefix_sums(&sums);
    vectorized.VisitMatchBitmap(c.begin, c.n, clipped);
    SumVisitor reference(&column);
    reference.Visitor::VisitMatchBitmap(c.begin, c.n, clipped);
    EXPECT_EQ(vectorized.sum(), reference.sum());
  }
}

TEST(VisitorTest, KindsReported) {
  const Column c = Column::FromValues({1});
  EXPECT_EQ(CountVisitor().kind(), Visitor::Kind::kCount);
  EXPECT_EQ(SumVisitor(&c).kind(), Visitor::Kind::kSum);
  EXPECT_EQ(CollectVisitor().kind(), Visitor::Kind::kCollect);
}

}  // namespace
}  // namespace flood
