// Wire-protocol unit tests: encode/parse round-trips for every message
// type, frame assembly from arbitrary chunkings, and the fuzz battery the
// serving tier's safety story rests on — truncation, flipped CRC bits,
// oversized length prefixes, version mismatches, and garbage mid-stream
// must all produce a *typed* rejection (FrameAssembler poison or a parse
// error), never a crash, never an over-read, never a giant allocation.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "query/query.h"
#include "serve/protocol.h"

namespace flood {
namespace serve {
namespace {

Query MakeQuery(uint64_t seed) {
  Rng rng(seed);
  const size_t dims = 1 + seed % 5;
  Query q(dims);
  for (size_t d = 0; d < dims; ++d) {
    Value a = rng.UniformInt(-1'000'000, 1'000'000);
    Value b = rng.UniformInt(-1'000'000, 1'000'000);
    if (a > b) std::swap(a, b);
    q.SetRange(d, a, b);
  }
  if (seed % 2 == 0) {
    q.set_agg({AggSpec::Kind::kSum, seed % dims});
  }
  return q;
}

/// Feeds `bytes` to a fresh assembler and pops every frame.
std::vector<Frame> Assemble(const std::string& bytes, bool* bad = nullptr) {
  FrameAssembler fa;
  fa.Feed(bytes.data(), bytes.size());
  std::vector<Frame> frames;
  Frame f;
  for (;;) {
    const FrameAssembler::Result r = fa.Next(&f);
    if (r == FrameAssembler::Result::kFrame) {
      frames.push_back(f);
      continue;
    }
    if (bad != nullptr) *bad = r == FrameAssembler::Result::kBad;
    break;
  }
  return frames;
}

// --- Round-trips -----------------------------------------------------------

TEST(ServeProtocolTest, PingRoundTrip) {
  std::string out;
  AppendPing({77}, &out);
  const std::vector<Frame> frames = Assemble(out);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].type, MessageType::kPing);
  const StatusOr<PingRequest> req = ParsePing(frames[0].payload);
  ASSERT_TRUE(req.ok());
  EXPECT_EQ(req->request_id, 77u);
}

TEST(ServeProtocolTest, RunBatchRoundTripPreservesQueries) {
  RunBatchRequest req;
  req.request_id = 42;
  for (uint64_t s = 1; s <= 17; ++s) req.queries.push_back(MakeQuery(s));
  std::string out;
  AppendRunBatch(req, &out);
  const std::vector<Frame> frames = Assemble(out);
  ASSERT_EQ(frames.size(), 1u);
  const StatusOr<RunBatchRequest> parsed = ParseRunBatch(frames[0].payload);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->request_id, 42u);
  ASSERT_EQ(parsed->queries.size(), req.queries.size());
  for (size_t i = 0; i < req.queries.size(); ++i) {
    const Query& a = req.queries[i];
    const Query& b = parsed->queries[i];
    ASSERT_EQ(a.num_dims(), b.num_dims());
    for (size_t d = 0; d < a.num_dims(); ++d) {
      EXPECT_EQ(a.range(d).lo, b.range(d).lo);
      EXPECT_EQ(a.range(d).hi, b.range(d).hi);
    }
    EXPECT_EQ(a.agg().kind, b.agg().kind);
    if (a.agg().kind == AggSpec::Kind::kSum) {
      EXPECT_EQ(a.agg().dim, b.agg().dim);
    }
  }
}

TEST(ServeProtocolTest, WriteRequestsRoundTrip) {
  std::string out;
  AppendInsert({5, {1, -2, 3}}, &out);
  InsertBatchRequest ib;
  ib.request_id = 6;
  ib.rows = {{9, 8, 7}, {-1, -2, -3}, {}};
  AppendInsertBatch(ib, &out);
  AppendDelete({7, {4, 5, 6}}, &out);
  AppendStats({8}, &out);

  const std::vector<Frame> frames = Assemble(out);
  ASSERT_EQ(frames.size(), 4u);

  const StatusOr<InsertRequest> ins = ParseInsert(frames[0].payload);
  ASSERT_TRUE(ins.ok());
  EXPECT_EQ(ins->request_id, 5u);
  EXPECT_EQ(ins->row, (std::vector<Value>{1, -2, 3}));

  const StatusOr<InsertBatchRequest> batch =
      ParseInsertBatch(frames[1].payload);
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch->rows, ib.rows);

  const StatusOr<DeleteRequest> del = ParseDelete(frames[2].payload);
  ASSERT_TRUE(del.ok());
  EXPECT_EQ(del->key, (std::vector<Value>{4, 5, 6}));

  const StatusOr<StatsRequest> stats = ParseStats(frames[3].payload);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->request_id, 8u);
}

TEST(ServeProtocolTest, BatchResultRoundTripIsBitExact) {
  BatchResultResponse resp;
  resp.request_id = 99;
  resp.server_wall_ms = 12.625;
  resp.results.push_back({0, false, 12345, 0, 1000});
  resp.results.push_back({1, false, 7, -987654321012345, 2000});
  resp.results.push_back({0, true, 0, 0, 0});
  std::string out;
  AppendBatchResult(resp, &out);
  const std::vector<Frame> frames = Assemble(out);
  ASSERT_EQ(frames.size(), 1u);
  const StatusOr<BatchResultResponse> parsed =
      ParseBatchResult(frames[0].payload);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->request_id, 99u);
  EXPECT_EQ(parsed->code, WireCode::kOk);
  EXPECT_EQ(parsed->server_wall_ms, 12.625);
  ASSERT_EQ(parsed->results.size(), 3u);
  EXPECT_EQ(parsed->results[0].count, 12345u);
  EXPECT_EQ(parsed->results[1].sum, -987654321012345);
  EXPECT_EQ(parsed->results[1].kind, 1);
  EXPECT_TRUE(parsed->results[2].skipped_empty);
}

TEST(ServeProtocolTest, ErrorAndAckAndStatsRoundTrip) {
  std::string out;
  AppendError({3, WireCode::kOverloaded, "queue full"}, &out);
  AppendWriteAck({4, WireCode::kOk, "", 17}, &out);
  StatsResponse stats;
  stats.request_id = 5;
  stats.entries = {{"serve.frames_decoded", 12.0}, {"db.num_rows", 1e6}};
  AppendStatsResult(stats, &out);

  const std::vector<Frame> frames = Assemble(out);
  ASSERT_EQ(frames.size(), 3u);
  const StatusOr<ErrorResponse> err = ParseError(frames[0].payload);
  ASSERT_TRUE(err.ok());
  EXPECT_EQ(err->code, WireCode::kOverloaded);
  EXPECT_EQ(err->message, "queue full");

  const StatusOr<WriteAckResponse> ack = ParseWriteAck(frames[1].payload);
  ASSERT_TRUE(ack.ok());
  EXPECT_EQ(ack->deleted, 17u);

  const StatusOr<StatsResponse> st = ParseStatsResult(frames[2].payload);
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->entries, stats.entries);
}

TEST(ServeProtocolTest, HealthRoundTrip) {
  std::string out;
  AppendHealth({41}, &out);
  HealthResponse resp;
  resp.request_id = 41;
  resp.ready = false;
  resp.draining = true;
  resp.persist_poisoned = true;
  resp.queue_depth = 9;
  resp.connections_active = 3;
  AppendHealthResult(resp, &out);

  const std::vector<Frame> frames = Assemble(out);
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].type, MessageType::kHealth);
  const StatusOr<HealthRequest> req = ParseHealth(frames[0].payload);
  ASSERT_TRUE(req.ok());
  EXPECT_EQ(req->request_id, 41u);

  EXPECT_EQ(frames[1].type, MessageType::kHealthResult);
  const StatusOr<HealthResponse> parsed =
      ParseHealthResult(frames[1].payload);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->request_id, 41u);
  EXPECT_FALSE(parsed->ready);
  EXPECT_TRUE(parsed->draining);
  EXPECT_TRUE(parsed->persist_poisoned);
  EXPECT_EQ(parsed->queue_depth, 9u);
  EXPECT_EQ(parsed->connections_active, 3u);
}

TEST(ServeProtocolTest, MetricsRoundTripPreservesHistogramBuckets) {
  std::string out;
  AppendMetrics({51}, &out);

  MetricsResponse resp;
  resp.request_id = 51;
  obs::MetricSnapshot counter;
  counter.name = "flood_db_queries_total";
  counter.help = "queries executed";
  counter.kind = obs::MetricKind::kCounter;
  counter.value = 12345.0;
  resp.metrics.push_back(counter);
  obs::MetricSnapshot gauge;
  gauge.name = "flood_serve_connections";
  gauge.kind = obs::MetricKind::kGauge;
  gauge.value = -3.0;  // Gauges are signed.
  resp.metrics.push_back(gauge);
  obs::MetricSnapshot hist;
  hist.name = "flood_db_query_ns";
  hist.help = "per-query latency";
  hist.kind = obs::MetricKind::kHistogram;
  for (int64_t v : {0, 1, 7, 1000, 123456, 999999999}) hist.hist.Record(v);
  resp.metrics.push_back(hist);
  resp.entries = {{"serve.frames_decoded", 9.0}, {"db.num_rows", 2e6}};
  AppendMetricsResult(resp, &out);

  const std::vector<Frame> frames = Assemble(out);
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].type, MessageType::kMetrics);
  const StatusOr<MetricsRequest> req = ParseMetrics(frames[0].payload);
  ASSERT_TRUE(req.ok());
  EXPECT_EQ(req->request_id, 51u);

  EXPECT_EQ(frames[1].type, MessageType::kMetricsResult);
  const StatusOr<MetricsResponse> parsed =
      ParseMetricsResult(frames[1].payload);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->request_id, 51u);
  ASSERT_EQ(parsed->metrics.size(), 3u);
  EXPECT_EQ(parsed->metrics[0].name, "flood_db_queries_total");
  EXPECT_EQ(parsed->metrics[0].help, "queries executed");
  EXPECT_EQ(parsed->metrics[0].kind, obs::MetricKind::kCounter);
  EXPECT_EQ(parsed->metrics[0].value, 12345.0);
  EXPECT_EQ(parsed->metrics[1].value, -3.0);
  const obs::HistogramData& h = parsed->metrics[2].hist;
  EXPECT_EQ(h.count, hist.hist.count);
  EXPECT_EQ(h.sum, hist.hist.sum);
  EXPECT_EQ(h.max, hist.hist.max);
  EXPECT_EQ(h.buckets, hist.hist.buckets);  // Sparse coding is lossless.
  EXPECT_EQ(parsed->entries, resp.entries);
}

TEST(ServeProtocolTest, MetricsResultRejectsBadKindAndBucketIndex) {
  MetricsResponse resp;
  resp.request_id = 1;
  obs::MetricSnapshot m;
  m.name = "x";
  m.kind = obs::MetricKind::kHistogram;
  m.hist.Record(42);
  resp.metrics.push_back(m);
  std::string out;
  AppendMetricsResult(resp, &out);
  const std::vector<Frame> frames = Assemble(out);
  ASSERT_EQ(frames.size(), 1u);
  const std::string& good = frames[0].payload;
  ASSERT_TRUE(ParseMetricsResult(good).ok());

  // Kind byte follows request_id(8) + count(4) + name(4+1) + help(4): 21.
  std::string bad_kind = good;
  bad_kind[21] = 3;
  EXPECT_FALSE(ParseMetricsResult(bad_kind).ok());

  // A histogram claiming more non-empty buckets than bytes remain.
  std::string payload;
  ByteWriter w(&payload);
  w.PutU64(1);          // request_id
  w.PutU32(1);          // num_metrics
  w.PutU32(1);          // name len
  w.PutU8('x');
  w.PutU32(0);          // help len
  w.PutU8(2);           // histogram
  w.PutU64(1);          // count
  w.PutI64(1);          // sum
  w.PutI64(1);          // max
  w.PutU32(0x00FFFFFF); // nonempty buckets: absurd
  EXPECT_FALSE(ParseMetricsResult(payload).ok());
}

TEST(ServeProtocolTest, HealthResultRejectsNonBooleanFlags) {
  std::string out;
  HealthResponse resp;
  resp.request_id = 1;
  AppendHealthResult(resp, &out);
  const std::vector<Frame> frames = Assemble(out);
  ASSERT_EQ(frames.size(), 1u);
  std::string payload = frames[0].payload;
  ASSERT_GE(payload.size(), 8u + 3u);
  payload[8] = 2;  // First flag byte: not 0/1.
  EXPECT_FALSE(ParseHealthResult(payload).ok());
}

TEST(ServeProtocolTest, WireCodeStatusMappingRoundTrips) {
  EXPECT_EQ(WireCodeFromStatus(Status::OK()), WireCode::kOk);
  EXPECT_EQ(WireCodeFromStatus(Status::InvalidArgument("x")),
            WireCode::kInvalidArgument);
  EXPECT_TRUE(StatusFromWireCode(WireCode::kOk, "").ok());
  const Status overloaded = StatusFromWireCode(WireCode::kOverloaded, "shed");
  EXPECT_FALSE(overloaded.ok());
  EXPECT_NE(overloaded.ToString().find("Overloaded"), std::string::npos);
  const Status deadline =
      StatusFromWireCode(WireCode::kDeadlineExceeded, "slow");
  EXPECT_EQ(deadline.code(), StatusCode::kDeadlineExceeded);
  const Status unavailable = StatusFromWireCode(WireCode::kUnavailable, "no");
  EXPECT_EQ(unavailable.code(), StatusCode::kUnavailable);
  EXPECT_EQ(WireCodeFromStatus(Status::DeadlineExceeded("x")),
            WireCode::kDeadlineExceeded);
  EXPECT_EQ(WireCodeFromStatus(Status::Unavailable("x")),
            WireCode::kUnavailable);
}

// --- Frame assembly --------------------------------------------------------

TEST(ServeProtocolTest, AssemblerHandlesArbitraryChunking) {
  std::string stream;
  AppendPing({1}, &stream);
  RunBatchRequest rb;
  rb.request_id = 2;
  rb.queries = {MakeQuery(3), MakeQuery(4)};
  AppendRunBatch(rb, &stream);
  AppendStats({3}, &stream);

  // Every chunk size from 1 byte up must yield the same three frames.
  for (size_t chunk = 1; chunk <= stream.size(); chunk += 7) {
    FrameAssembler fa;
    std::vector<Frame> frames;
    Frame f;
    for (size_t off = 0; off < stream.size(); off += chunk) {
      fa.Feed(stream.data() + off, std::min(chunk, stream.size() - off));
      while (fa.Next(&f) == FrameAssembler::Result::kFrame) {
        frames.push_back(f);
      }
    }
    ASSERT_EQ(frames.size(), 3u) << "chunk=" << chunk;
    EXPECT_EQ(frames[0].type, MessageType::kPing);
    EXPECT_EQ(frames[1].type, MessageType::kRunBatch);
    EXPECT_EQ(frames[2].type, MessageType::kStats);
  }
}

TEST(ServeProtocolTest, AssemblerCompactionSurvivesManyFrames) {
  // Thousands of small frames through one assembler: the lazy compaction
  // path must not lose or duplicate frames.
  FrameAssembler fa;
  Frame f;
  size_t got = 0;
  for (uint64_t i = 0; i < 5000; ++i) {
    std::string frame;
    AppendPing({i}, &frame);
    fa.Feed(frame.data(), frame.size());
    while (fa.Next(&f) == FrameAssembler::Result::kFrame) {
      const StatusOr<PingRequest> req = ParsePing(f.payload);
      ASSERT_TRUE(req.ok());
      ASSERT_EQ(req->request_id, got);
      ++got;
    }
  }
  EXPECT_EQ(got, 5000u);
  EXPECT_EQ(fa.buffered_bytes(), 0u);
}

// --- Fuzz: corruption must produce typed errors, never UB ------------------

TEST(ServeProtocolFuzzTest, TruncationAtEveryByteNeverCrashes) {
  std::string stream;
  RunBatchRequest rb;
  rb.request_id = 11;
  rb.queries = {MakeQuery(1), MakeQuery(2), MakeQuery(6)};
  AppendRunBatch(rb, &stream);

  for (size_t cut = 0; cut < stream.size(); ++cut) {
    bool bad = false;
    const std::vector<Frame> frames =
        Assemble(stream.substr(0, cut), &bad);
    // A truncated stream yields no frame and no poison — just "need more".
    EXPECT_TRUE(frames.empty());
    EXPECT_FALSE(bad) << "cut=" << cut;
  }
}

TEST(ServeProtocolFuzzTest, EverySingleBitFlipIsRejectedOrDetected) {
  std::string stream;
  RunBatchRequest rb;
  rb.request_id = 13;
  rb.queries = {MakeQuery(5)};
  AppendRunBatch(rb, &stream);

  for (size_t byte = 0; byte < stream.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string corrupt = stream;
      corrupt[byte] = static_cast<char>(corrupt[byte] ^ (1 << bit));
      bool bad = false;
      const std::vector<Frame> frames = Assemble(corrupt, &bad);
      if (frames.empty()) continue;  // Poisoned or starved: both fine.
      // A frame that still decoded means the flip hit the payload AND the
      // CRC simultaneously — impossible for a single-bit flip.
      ASSERT_EQ(frames.size(), 1u);
      const StatusOr<RunBatchRequest> parsed =
          ParseRunBatch(frames[0].payload);
      // Payload intact implies header-only flip was caught above; the only
      // decodable case is a flip in the reserved bytes, which we accept.
      ASSERT_TRUE(parsed.ok()) << "byte=" << byte << " bit=" << bit;
    }
  }
}

TEST(ServeProtocolFuzzTest, FlippedCrcPoisonsTheStream) {
  std::string stream;
  AppendPing({1}, &stream);
  stream[12] = static_cast<char>(stream[12] ^ 0xFF);  // CRC field.
  bool bad = false;
  const std::vector<Frame> frames = Assemble(stream, &bad);
  EXPECT_TRUE(frames.empty());
  EXPECT_TRUE(bad);

  FrameAssembler fa;
  fa.Feed(stream.data(), stream.size());
  Frame f;
  EXPECT_EQ(fa.Next(&f), FrameAssembler::Result::kBad);
  EXPECT_EQ(fa.error_code(), WireCode::kBadFrame);
  // Poison is sticky: feeding a pristine frame afterwards changes nothing.
  std::string good;
  AppendPing({2}, &good);
  fa.Feed(good.data(), good.size());
  EXPECT_EQ(fa.Next(&f), FrameAssembler::Result::kBad);
}

TEST(ServeProtocolFuzzTest, OversizedLengthPrefixIsRejectedNotAllocated) {
  std::string stream;
  AppendPing({1}, &stream);
  // Rewrite payload_len (offset 8..11) to 4 GiB-ish; the assembler must
  // reject from the header alone instead of waiting for (or allocating)
  // that many bytes.
  stream[8] = static_cast<char>(0xFF);
  stream[9] = static_cast<char>(0xFF);
  stream[10] = static_cast<char>(0xFF);
  stream[11] = static_cast<char>(0x7F);
  FrameAssembler fa;
  fa.Feed(stream.data(), stream.size());
  Frame f;
  EXPECT_EQ(fa.Next(&f), FrameAssembler::Result::kBad);
  EXPECT_EQ(fa.error_code(), WireCode::kBadFrame);
  EXPECT_EQ(fa.buffered_bytes(), 0u);  // Poison dropped the buffer.
}

TEST(ServeProtocolFuzzTest, VersionMismatchIsItsOwnTypedError) {
  std::string stream;
  AppendPing({1}, &stream);
  stream[4] = static_cast<char>(kWireVersion + 1);
  FrameAssembler fa;
  fa.Feed(stream.data(), stream.size());
  Frame f;
  EXPECT_EQ(fa.Next(&f), FrameAssembler::Result::kBad);
  EXPECT_EQ(fa.error_code(), WireCode::kVersionMismatch);
}

TEST(ServeProtocolFuzzTest, GarbageMidStreamPoisonsAfterValidPrefix) {
  std::string stream;
  AppendPing({1}, &stream);
  const size_t good_frames_end = stream.size();
  stream += "this is definitely not a frame header, not even close";

  FrameAssembler fa;
  fa.Feed(stream.data(), stream.size());
  Frame f;
  // The valid prefix still decodes...
  ASSERT_EQ(fa.Next(&f), FrameAssembler::Result::kFrame);
  EXPECT_EQ(f.type, MessageType::kPing);
  // ...then the garbage poisons the stream with a typed code.
  EXPECT_EQ(fa.Next(&f), FrameAssembler::Result::kBad);
  EXPECT_EQ(fa.error_code(), WireCode::kBadFrame);
  EXPECT_TRUE(fa.bad());
  (void)good_frames_end;
}

TEST(ServeProtocolFuzzTest, RandomGarbagePayloadsNeverCrashParsers) {
  // CRC-valid frames wrapping random bytes: every parser must fail
  // gracefully (or, rarely, succeed on an accidentally-valid body) without
  // UB — this is the test ASan/UBSan sharpen.
  Rng rng(2024);
  for (int iter = 0; iter < 500; ++iter) {
    const size_t len = static_cast<size_t>(rng.UniformInt(0, 64));
    std::string payload(len, '\0');
    for (char& c : payload) {
      c = static_cast<char>(rng.UniformInt(0, 255));
    }
    (void)ParsePing(payload);
    (void)ParseRunBatch(payload);
    (void)ParseInsert(payload);
    (void)ParseInsertBatch(payload);
    (void)ParseDelete(payload);
    (void)ParseStats(payload);
    (void)ParsePong(payload);
    (void)ParseBatchResult(payload);
    (void)ParseWriteAck(payload);
    (void)ParseStatsResult(payload);
    (void)ParseHealth(payload);
    (void)ParseHealthResult(payload);
    (void)ParseMetrics(payload);
    (void)ParseMetricsResult(payload);
    (void)ParseError(payload);
  }
}

TEST(ServeProtocolFuzzTest, HugeElementCountsAreRejectedBeforeAllocation) {
  // A RunBatch body claiming 2^31 queries in a 20-byte payload must be
  // rejected by the size sanity check, not by std::bad_alloc.
  std::string payload;
  ByteWriter w(&payload);
  w.PutU64(1);                    // request_id
  w.PutU32(0x7FFFFFFF);           // query count
  w.PutU64(0);                    // a few bytes of "queries"
  EXPECT_FALSE(ParseRunBatch(payload).ok());

  payload.clear();
  ByteWriter w2(&payload);
  w2.PutU64(1);
  w2.PutU32(0x7FFFFFFF);  // row count
  EXPECT_FALSE(ParseInsertBatch(payload).ok());

  // And a query whose num_dims claims more than the payload could hold.
  payload.clear();
  ByteWriter w3(&payload);
  w3.PutU64(1);
  w3.PutU32(1);           // one query
  w3.PutU32(0xFFFF);      // num_dims = 65535, but no range bytes follow
  EXPECT_FALSE(ParseRunBatch(payload).ok());
}

TEST(ServeProtocolFuzzTest, TrailingGarbageInsideValidPayloadIsRejected) {
  // CRC passes (we frame the oversized body ourselves), but the body has
  // extra bytes after a complete Ping — parsers must reject, not ignore.
  std::string payload;
  ByteWriter w(&payload);
  w.PutU64(123);
  w.PutU8(0xAB);  // trailing byte
  EXPECT_FALSE(ParsePing(payload).ok());
}

}  // namespace
}  // namespace serve
}  // namespace flood
