// Scatter-gather router tests: a serve::Server fronting a Router over N
// shards must answer every wire RunBatch bit-identically to one unsharded
// in-process Database — for every registered index, with staged writes and
// tombstones in flight — while provably pruning shards whose key range is
// disjoint from the query, routing writes to exactly one shard, merging
// Stats/Health across shards, and failing ONLY the frames whose queries
// were routed to an overloaded or dead shard.

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <future>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "api/database.h"
#include "api/index_registry.h"
#include "api/shard_map.h"
#include "api/sharded_database.h"
#include "serve/client.h"
#include "serve/engine.h"
#include "serve/protocol.h"
#include "serve/router.h"
#include "serve/server.h"
#include "tests/test_util.h"

namespace flood {
namespace serve {
namespace {

using flood::testing::DataShape;
using flood::testing::MakeTable;
using flood::testing::RandomQuery;
using flood::testing::RowsOf;

std::string UniquePath(const std::string& tag) {
  static std::atomic<int> counter{0};
  return ::testing::TempDir() + "flood_router_" + std::to_string(::getpid()) +
         "_" + tag + "_" + std::to_string(counter.fetch_add(1)) + ".sock";
}

/// RAII: unlinks the UDS path (the server also unlinks on clean drain).
struct SocketPath {
  explicit SocketPath(const std::string& tag) : path(UniquePath(tag)) {}
  ~SocketPath() { ::unlink(path.c_str()); }
  std::string path;
};

StatusOr<Database> OpenDb(const Table& table, const std::string& index,
                          size_t threads) {
  DatabaseOptions options;
  options.index_name = index;
  options.num_threads = threads;
  if (index == "flood") {
    Workload train;
    for (uint64_t s = 0; s < 20; ++s) {
      train.Add(RandomQuery(table, 5000 + s));
    }
    options.training_workload = std::move(train);
  }
  return Database::Open(table, std::move(options));
}

StatusOr<ShardedDatabase> OpenSharded(const Table& table,
                                      const std::string& index,
                                      size_t num_shards) {
  ShardedDatabaseOptions options;
  options.num_shards = num_shards;
  options.sort_dim = 0;
  options.shard_options.index_name = index;
  options.shard_options.num_threads = 2;
  if (index == "flood") {
    Workload train;
    for (uint64_t s = 0; s < 20; ++s) {
      train.Add(RandomQuery(table, 5000 + s));
    }
    options.shard_options.training_workload = std::move(train);
  }
  return ShardedDatabase::Open(table, options);
}

std::vector<Query> MakeQueries(const Table& table, size_t n, uint64_t seed) {
  std::vector<Query> queries;
  for (size_t i = 0; i < n; ++i) {
    Query q = RandomQuery(table, seed + i);
    if (i % 3 == 0) q.set_agg({AggSpec::Kind::kSum, i % table.num_dims()});
    queries.push_back(std::move(q));
  }
  return queries;
}

/// Runs one batch through the router and blocks for the merged result (the
/// completion may fire on a shard's pool thread).
EngineBatchResult RunRouted(Router* router, std::vector<Query> queries) {
  std::promise<EngineBatchResult> done;
  std::future<EngineBatchResult> result = done.get_future();
  router->RunBatchAsync(std::move(queries), [&done](EngineBatchResult r) {
    done.set_value(std::move(r));
  });
  return result.get();
}

/// A shard that always answers every query with one fixed code — the
/// deterministic stand-in for an overloaded or dead backend.
class FixedCodeEngine : public BatchEngine {
 public:
  /// `batch_level` = true makes the whole sub-batch fail (status non-OK,
  /// no results) — the shape of a shard that died mid-flight — instead of
  /// per-query typed codes (the shape of a shard that shed).
  FixedCodeEngine(WireCode code, bool ready, bool batch_level = false)
      : code_(code), ready_(ready), batch_level_(batch_level) {}

  void RunBatchAsync(std::vector<Query> queries,
                     std::function<void(EngineBatchResult)> on_done) override {
    EngineBatchResult out;
    if (batch_level_) {
      out.status = Status::Unavailable("stub shard died");
      on_done(std::move(out));
      return;
    }
    out.results.resize(queries.size());
    for (EngineQueryResult& r : out.results) {
      r.code = code_;
      r.message = "stub shard refused";
    }
    on_done(std::move(out));
  }
  Status Insert(const std::vector<Value>&) override {
    return Status::Unavailable("stub shard");
  }
  Status InsertBatch(std::span<const std::vector<Value>>) override {
    return Status::Unavailable("stub shard");
  }
  StatusOr<uint64_t> Delete(const std::vector<Value>&) override {
    return Status::Unavailable("stub shard");
  }
  EngineHealth Health() const override { return {ready_, false}; }
  std::vector<std::pair<std::string, double>> Introspect() const override {
    return {{"stub", 1.0}};
  }

 private:
  const WireCode code_;
  const bool ready_;
  const bool batch_level_;
};

double Lookup(const std::vector<std::pair<std::string, double>>& entries,
              const std::string& key) {
  for (const auto& [k, v] : entries) {
    if (k == key) return v;
  }
  return -1.0;
}

// ---------------------------------------------------------------------------
// Acceptance: wire results through the routed server are bit-identical to an
// unsharded in-process RunBatch for every registered index, with staged
// writes AND tombstones in flight on both sides.
// ---------------------------------------------------------------------------

TEST(ServeRouterTest, RoutedLoopbackBitIdenticalToUnshardedForEveryIndex) {
  const Table table = MakeTable(DataShape::kClustered, 4'000, 3, 81);
  const std::vector<std::vector<Value>> rows = RowsOf(table);
  std::vector<Query> queries = MakeQueries(table, 40, 2100);
  queries.push_back(Query(3));  // Unfiltered: broadcast to every shard.
  Query empty(3);
  empty.SetRange(0, 10, 5);  // lo > hi: answered locally, no scatter.
  queries.push_back(empty);

  size_t tested = 0;
  for (const std::string& index : IndexRegistry::Global().Names()) {
    StatusOr<Database> single = OpenDb(table, index, 2);
    if (!single.ok()) continue;  // e.g. grid-file budget: N/A on this data.
    StatusOr<ShardedDatabase> sharded = OpenSharded(table, index, 3);
    if (!sharded.ok()) continue;

    // The same staged writes on both sides: inserts AND tombstones,
    // deliberately NOT compacted, so every shard serves base + delta.
    for (Value i = 0; i < 30; ++i) {
      const std::vector<Value> row = {1'000'000 + i, 1'000'000 - i, i};
      ASSERT_TRUE(single->Insert(row).ok());
      ASSERT_TRUE(sharded->Insert(row).ok());
    }
    for (size_t i = 0; i < 10; ++i) {
      ASSERT_TRUE(single->Delete(rows[i * 131]).ok());
      ASSERT_TRUE(sharded->Delete(rows[i * 131]).ok());
    }
    ASSERT_GT(sharded->pending_writes(), 0u) << index;

    std::unique_ptr<Router> router = Router::Over(&*sharded);
    ServerOptions sopts;
    SocketPath sock(index);
    sopts.uds_path = sock.path;
    StatusOr<std::unique_ptr<Server>> server =
        Server::Create(router.get(), std::move(sopts));
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    (*server)->Start();

    StatusOr<Client> client = Client::Connect("unix:" + sock.path);
    ASSERT_TRUE(client.ok()) << client.status().ToString();

    const BatchResult local = single->RunBatch(queries);
    ASSERT_TRUE(local.status.ok());
    StatusOr<BatchResultResponse> wire = client->RunBatch(queries);
    ASSERT_TRUE(wire.ok()) << wire.status().ToString();
    ASSERT_EQ(wire->code, WireCode::kOk) << wire->message;
    ASSERT_EQ(wire->results.size(), local.results.size()) << index;
    for (size_t i = 0; i < queries.size(); ++i) {
      EXPECT_EQ(wire->results[i].count, local.results[i].count)
          << index << " query " << i;
      EXPECT_EQ(wire->results[i].sum, local.results[i].sum)
          << index << " query " << i;
      EXPECT_EQ(wire->results[i].kind == 1,
                local.results[i].kind == QueryResult::Kind::kSum)
          << index << " query " << i;
      EXPECT_EQ(wire->results[i].skipped_empty,
                local.results[i].skipped_empty)
          << index << " query " << i;
    }

    // The sweep exercised real fan-out, not a degenerate broadcast: at
    // least one query was pruned somewhere and one was answered locally.
    const RouterCounters rc = router->counters();
    EXPECT_EQ(rc.batches_routed, 1u) << index;
    EXPECT_EQ(rc.queries_routed, queries.size()) << index;
    EXPECT_GT(rc.subqueries_pruned, 0u) << index;
    EXPECT_EQ(rc.queries_skipped_empty, 1u) << index;
    EXPECT_EQ(rc.shard_errors, 0u) << index;

    (*server)->Shutdown();
    (*server)->Join();
    ++tested;
  }
  // The registry always has at least the core indexes; a regression that
  // silently skips everything must fail loudly.
  EXPECT_GE(tested, 5u);
}

// ---------------------------------------------------------------------------
// Scatter pruning: a query disjoint from a shard's key range never reaches
// that shard — the per-shard counters prove it, and the answers still match
// an unsharded database.
// ---------------------------------------------------------------------------

TEST(ServeRouterTest, DisjointQueriesNeverReachPrunedShards) {
  const Table table = MakeTable(DataShape::kUniform, 3'000, 3, 82);
  StatusOr<ShardedDatabase> sharded = OpenSharded(table, "kdtree", 3);
  ASSERT_TRUE(sharded.ok());
  ASSERT_EQ(sharded->num_shards(), 3u);
  StatusOr<Database> single = OpenDb(table, "kdtree", 2);
  ASSERT_TRUE(single.ok());

  std::unique_ptr<Router> router = Router::Over(&*sharded);
  const ShardMap& map = router->shard_map();

  // Queries strictly inside shard 0's key range: shards 1 and 2 are
  // provably empty for them and must never see a subquery.
  constexpr size_t kQueries = 8;
  std::vector<Query> queries;
  const ValueRange r0 = map.RangeOf(0);
  for (size_t i = 0; i < kQueries; ++i) {
    Query q(3);
    q.SetRange(0, r0.lo, r0.hi - static_cast<Value>(i));
    q.SetRange(1, 0, kValueMax - static_cast<Value>(i));
    queries.push_back(std::move(q));
  }

  const EngineBatchResult routed = RunRouted(router.get(), queries);
  ASSERT_TRUE(routed.status.ok());
  ASSERT_EQ(routed.results.size(), kQueries);
  const BatchResult want = single->RunBatch(queries);
  ASSERT_TRUE(want.status.ok());
  for (size_t i = 0; i < kQueries; ++i) {
    EXPECT_EQ(routed.results[i].code, WireCode::kOk) << i;
    EXPECT_EQ(routed.results[i].count, want.results[i].count) << i;
  }

  RouterCounters c = router->counters();
  ASSERT_EQ(c.per_shard_subqueries.size(), 3u);
  EXPECT_EQ(c.per_shard_subqueries[0], kQueries);
  EXPECT_EQ(c.per_shard_subqueries[1], 0u);
  EXPECT_EQ(c.per_shard_subqueries[2], 0u);
  EXPECT_EQ(c.subqueries_sent, kQueries);
  EXPECT_EQ(c.subqueries_pruned, kQueries * 2);  // 2 shards pruned per query.

  // A boundary-straddling query fans out to exactly the two shards it
  // touches; the third stays pruned.
  const ValueRange r1 = map.RangeOf(1);
  Query straddle(3);
  straddle.SetRange(0, r1.lo - 1, r1.lo);
  const EngineBatchResult both = RunRouted(router.get(), {straddle});
  ASSERT_TRUE(both.status.ok());
  EXPECT_EQ(both.results[0].count, single->Run(straddle).count);
  c = router->counters();
  EXPECT_EQ(c.per_shard_subqueries[0], kQueries + 1);
  EXPECT_EQ(c.per_shard_subqueries[1], 1u);
  EXPECT_EQ(c.per_shard_subqueries[2], 0u);
}

// ---------------------------------------------------------------------------
// Writes route to exactly one shard; Stats and Health merge across shards.
// ---------------------------------------------------------------------------

TEST(ServeRouterTest, WireWritesRouteByKeyAndStatsHealthMerge) {
  const Table table = MakeTable(DataShape::kUniform, 3'000, 3, 83);
  StatusOr<ShardedDatabase> sharded = OpenSharded(table, "kdtree", 3);
  ASSERT_TRUE(sharded.ok());
  ASSERT_EQ(sharded->num_shards(), 3u);

  std::unique_ptr<Router> router = Router::Over(&*sharded);
  const ShardMap& map = router->shard_map();

  ServerOptions sopts;
  SocketPath sock("writes");
  sopts.uds_path = sock.path;
  auto server = Server::Create(router.get(), std::move(sopts));
  ASSERT_TRUE(server.ok());
  (*server)->Start();
  auto client = Client::Connect("unix:" + sock.path);
  ASSERT_TRUE(client.ok());

  // One insert per shard, keyed into that shard's range: each must land in
  // its owner's delta and nowhere else.
  for (size_t s = 0; s < 3; ++s) {
    const Value key = map.RangeOf(s).lo == kValueMin ? 0 : map.RangeOf(s).lo;
    ASSERT_TRUE(client->Insert({key, 7, 7}).ok()) << "shard " << s;
    for (size_t t = 0; t < 3; ++t) {
      EXPECT_EQ(sharded->shard(t)->delta_inserts(), t <= s ? 1u : 0u)
          << "after insert " << s << ", shard " << t;
    }
  }

  // An InsertBatch splits across its target shards.
  const Value k1 = map.RangeOf(1).lo;
  const Value k2 = map.RangeOf(2).lo;
  std::vector<std::vector<Value>> batch_rows = {{k1, 1, 1}, {k2, 2, 2}};
  ASSERT_TRUE(client->InsertBatch(batch_rows).ok());
  EXPECT_EQ(sharded->shard(0)->delta_inserts(), 1u);
  EXPECT_EQ(sharded->shard(1)->delta_inserts(), 2u);
  EXPECT_EQ(sharded->shard(2)->delta_inserts(), 2u);

  // Delete routes by the key's sort-dim value too.
  StatusOr<uint64_t> deleted = client->Delete({k2, 2, 2});
  ASSERT_TRUE(deleted.ok());
  EXPECT_EQ(*deleted, 1u);

  // Health merges: every in-process shard is ready, none poisoned.
  StatusOr<HealthResponse> health = client->Health();
  ASSERT_TRUE(health.ok());
  EXPECT_TRUE(health->ready);
  EXPECT_FALSE(health->draining);
  EXPECT_FALSE(health->persist_poisoned);

  // Stats merges: serve.* from the front end, router.* from the router,
  // and every shard's database gauges under its shard<i>. prefix.
  auto stats = client->Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(Lookup(*stats, "router.num_shards"), 3.0);
  // 3 Inserts + 1 InsertBatch + 1 Delete = 5 routed write calls.
  EXPECT_EQ(Lookup(*stats, "router.writes_routed"), 5.0);
  EXPECT_GE(Lookup(*stats, "serve.writes_applied"), 5.0);
  EXPECT_EQ(Lookup(*stats, "shard1.db.delta_inserts"), 2.0);
  EXPECT_GE(Lookup(*stats, "shard0.subqueries"), 0.0);
  EXPECT_GE(Lookup(*stats, "shard2.db.num_rows"), 1.0);

  (*server)->Shutdown();
  (*server)->Join();
}

// ---------------------------------------------------------------------------
// Partial shed: an overloaded shard fails ONLY the queries routed to it.
// ---------------------------------------------------------------------------

TEST(ServeRouterTest, OverloadedShardFailsOnlyItsOwnQueries) {
  const Table table = MakeTable(DataShape::kUniform, 2'000, 3, 84);
  StatusOr<Database> healthy = OpenDb(table, "kdtree", 2);
  ASSERT_TRUE(healthy.ok());

  // Shard 0 = a real database; shard 1 = a stub that sheds everything.
  StatusOr<ShardMap> map = ShardMap::FromBounds(0, {1'000'000});
  ASSERT_TRUE(map.ok());
  std::vector<std::unique_ptr<BatchEngine>> backends;
  backends.push_back(std::make_unique<DatabaseEngine>(&*healthy));
  backends.push_back(
      std::make_unique<FixedCodeEngine>(WireCode::kOverloaded, true));
  Router router(std::move(*map), std::move(backends));

  Query mine(3);
  mine.SetRange(0, 0, 999'999);  // Shard 0 only: must succeed.
  Query theirs(3);
  theirs.SetRange(0, 1'000'000, 2'000'000);  // Shard 1 only: shed.
  Query spanning(3);
  spanning.SetRange(0, 0, 1'500'000);  // Touches both: the failure wins.
  Query empty(3);
  empty.SetRange(0, 10, 5);  // Never scattered: immune to the bad shard.

  const EngineBatchResult routed =
      RunRouted(&router, {mine, theirs, spanning, empty});
  ASSERT_TRUE(routed.status.ok());
  ASSERT_EQ(routed.results.size(), 4u);
  EXPECT_EQ(routed.results[0].code, WireCode::kOk);
  EXPECT_EQ(routed.results[0].count, healthy->Run(mine).count);
  EXPECT_EQ(routed.results[1].code, WireCode::kOverloaded);
  EXPECT_EQ(routed.results[2].code, WireCode::kOverloaded);
  EXPECT_EQ(routed.results[3].code, WireCode::kOk);
  EXPECT_TRUE(routed.results[3].skipped_empty);

  // A shard that dies at the sub-batch level (non-OK status, no results)
  // is normalized into per-query codes for exactly its own queries and
  // counted as a shard error.
  StatusOr<ShardMap> map3 = ShardMap::FromBounds(0, {1'000'000});
  ASSERT_TRUE(map3.ok());
  std::vector<std::unique_ptr<BatchEngine>> dying;
  dying.push_back(std::make_unique<DatabaseEngine>(&*healthy));
  dying.push_back(std::make_unique<FixedCodeEngine>(WireCode::kUnavailable,
                                                    true, /*batch_level=*/true));
  Router dead(std::move(*map3), std::move(dying));
  const EngineBatchResult after = RunRouted(&dead, {mine, theirs});
  ASSERT_TRUE(after.status.ok());
  EXPECT_EQ(after.results[0].code, WireCode::kOk);
  EXPECT_EQ(after.results[0].count, healthy->Run(mine).count);
  EXPECT_EQ(after.results[1].code, WireCode::kUnavailable);
  EXPECT_EQ(dead.counters().shard_errors, 1u);

  // Health merge ANDs readiness: both shards report ready here, and a
  // not-ready stub flips the merged answer.
  EXPECT_TRUE(router.Health().ready);
  std::vector<std::unique_ptr<BatchEngine>> sick;
  sick.push_back(std::make_unique<DatabaseEngine>(&*healthy));
  sick.push_back(
      std::make_unique<FixedCodeEngine>(WireCode::kOverloaded, false));
  StatusOr<ShardMap> map2 = ShardMap::FromBounds(0, {1'000'000});
  ASSERT_TRUE(map2.ok());
  Router down(std::move(*map2), std::move(sick));
  EXPECT_FALSE(down.Health().ready);
}

TEST(ServeRouterTest, OneShardOverloadedOverTheWireShedsOnlyItsFrames) {
  const Table table = MakeTable(DataShape::kUniform, 2'000, 3, 85);

  // The overloaded shard is a REAL flood_serve-style server with zero
  // queue slots (every RunBatch shed with kOverloaded), reached through a
  // remote backend — the multi-process deployment shape.
  StatusOr<Database> inner_db = OpenDb(table, "kdtree", 2);
  ASSERT_TRUE(inner_db.ok());
  ServerOptions inner_opts;
  SocketPath inner_sock("inner");
  inner_opts.uds_path = inner_sock.path;
  inner_opts.max_inflight_batches = 0;
  auto inner = Server::Create(&*inner_db, std::move(inner_opts));
  ASSERT_TRUE(inner.ok());
  (*inner)->Start();

  StatusOr<Database> local_db = OpenDb(table, "kdtree", 2);
  ASSERT_TRUE(local_db.ok());
  StatusOr<ShardMap> map = ShardMap::FromBounds(0, {1'000'000});
  ASSERT_TRUE(map.ok());
  std::vector<std::unique_ptr<BatchEngine>> backends;
  backends.push_back(std::make_unique<DatabaseEngine>(&*local_db));
  backends.push_back(MakeRemoteBackend("unix:" + inner_sock.path));
  Router router(std::move(*map), std::move(backends));

  ServerOptions outer_opts;
  SocketPath outer_sock("outer");
  outer_opts.uds_path = outer_sock.path;
  auto outer = Server::Create(&router, std::move(outer_opts));
  ASSERT_TRUE(outer.ok());
  (*outer)->Start();
  auto client = Client::Connect("unix:" + outer_sock.path);
  ASSERT_TRUE(client.ok());

  // Two pipelined frames on one connection: the healthy shard's frame must
  // come back kOk with full results, the overloaded shard's as a typed
  // kOverloaded error — partial shed at frame granularity.
  Query mine(3);
  mine.SetRange(0, 0, 999'999);
  Query theirs(3);
  theirs.SetRange(0, 1'000'000, 2'000'000);
  const std::vector<Query> q_mine = {mine};
  const std::vector<Query> q_theirs = {theirs};
  ASSERT_TRUE(client->SendRunBatch(1, q_mine).ok());
  ASSERT_TRUE(client->SendRunBatch(2, q_theirs).ok());

  bool got_ok = false;
  bool got_shed = false;
  for (int i = 0; i < 2; ++i) {
    StatusOr<BatchResultResponse> reply = client->ReadBatchReply();
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    if (reply->request_id == 1) {
      EXPECT_EQ(reply->code, WireCode::kOk) << reply->message;
      ASSERT_EQ(reply->results.size(), 1u);
      EXPECT_EQ(reply->results[0].count, local_db->Run(mine).count);
      got_ok = true;
    } else {
      EXPECT_EQ(reply->request_id, 2u);
      EXPECT_EQ(reply->code, WireCode::kOverloaded);
      got_shed = true;
    }
  }
  EXPECT_TRUE(got_ok);
  EXPECT_TRUE(got_shed);

  // While the overloaded shard is alive it still answers Health inline, so
  // the merged health is ready; once it dies, the router reports not ready.
  StatusOr<HealthResponse> health = client->Health();
  ASSERT_TRUE(health.ok());
  EXPECT_TRUE(health->ready);

  (*inner)->Shutdown();
  ASSERT_TRUE((*inner)->Join().ok());
  health = client->Health();
  ASSERT_TRUE(health.ok());
  EXPECT_FALSE(health->ready);

  (*outer)->Shutdown();
  (*outer)->Join();
}

}  // namespace
}  // namespace serve
}  // namespace flood
