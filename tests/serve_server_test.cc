// Serving-tier integration tests over loopback Unix-domain sockets (plus
// one TCP case): wire results must be bit-identical to in-process
// Database::RunBatch for every registered index — with staged writes and
// tombstones in flight — and the server must shed overload with typed
// kOverloaded while Ping stays responsive, keep honest observability
// counters, survive garbage bytes, and drain cleanly on Shutdown.

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/database.h"
#include "api/index_registry.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "tests/test_util.h"

namespace flood {
namespace serve {
namespace {

using flood::testing::DataShape;
using flood::testing::MakeTable;
using flood::testing::RandomQuery;
using flood::testing::RowsOf;

std::string UniquePath(const std::string& tag) {
  static std::atomic<int> counter{0};
  return ::testing::TempDir() + "flood_serve_" + std::to_string(::getpid()) +
         "_" + tag + "_" + std::to_string(counter.fetch_add(1)) + ".sock";
}

/// RAII: unlinks the UDS path (the server also unlinks on clean drain).
struct SocketPath {
  explicit SocketPath(const std::string& tag) : path(UniquePath(tag)) {}
  ~SocketPath() { ::unlink(path.c_str()); }
  std::string path;
};

StatusOr<Database> OpenDb(const Table& table, const std::string& index,
                          size_t threads) {
  DatabaseOptions options;
  options.index_name = index;
  options.num_threads = threads;
  if (index == "flood") {
    Workload train;
    for (uint64_t s = 0; s < 20; ++s) {
      train.Add(RandomQuery(table, 5000 + s));
    }
    options.training_workload = std::move(train);
  }
  return Database::Open(table, std::move(options));
}

std::vector<Query> MakeQueries(const Table& table, size_t n,
                               uint64_t seed) {
  std::vector<Query> queries;
  for (size_t i = 0; i < n; ++i) {
    Query q = RandomQuery(table, seed + i);
    if (i % 3 == 0) q.set_agg({AggSpec::Kind::kSum, i % table.num_dims()});
    queries.push_back(std::move(q));
  }
  return queries;
}

/// Raw blocking UDS socket for tests that need byte-level control
/// (single-burst pipelining, garbage injection).
struct RawConn {
  int fd = -1;
  FrameAssembler assembler;

  explicit RawConn(const std::string& path) {
    fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    struct sockaddr_un addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      ::close(fd);
      fd = -1;
    }
  }
  ~RawConn() {
    if (fd >= 0) ::close(fd);
  }

  bool SendAll(const std::string& bytes) {
    size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n =
          ::send(fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
      if (n <= 0) return false;
      off += static_cast<size_t>(n);
    }
    return true;
  }

  /// Blocks for the next frame; false on EOF/corruption.
  bool NextFrame(Frame* frame) {
    for (;;) {
      switch (assembler.Next(frame)) {
        case FrameAssembler::Result::kFrame:
          return true;
        case FrameAssembler::Result::kBad:
          return false;
        case FrameAssembler::Result::kNeedMore:
          break;
      }
      char buf[4096];
      const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      if (n <= 0) return false;
      assembler.Feed(buf, static_cast<size_t>(n));
    }
  }

  /// Blocks until the server closes this connection.
  bool WaitForClose() {
    char buf[4096];
    for (;;) {
      const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      if (n == 0) return true;
      if (n < 0) return errno == ECONNRESET;
    }
  }
};

// ---------------------------------------------------------------------------
// Acceptance: loopback results are bit-identical to in-process RunBatch for
// every registered index, with staged writes AND tombstones in flight.
// ---------------------------------------------------------------------------

TEST(ServeServerTest, LoopbackBitIdenticalToInProcessForEveryIndex) {
  const Table table = MakeTable(DataShape::kClustered, 4'000, 3, 71);
  const std::vector<std::vector<Value>> rows = RowsOf(table);
  const std::vector<Query> queries = MakeQueries(table, 40, 900);

  size_t tested = 0;
  for (const std::string& index : IndexRegistry::Global().Names()) {
    StatusOr<Database> db = OpenDb(table, index, 2);
    if (!db.ok()) continue;  // e.g. grid-file budget: N/A on this data.

    // Stage writes the server must serve through the delta: inserts AND
    // tombstones, deliberately NOT compacted.
    for (Value i = 0; i < 30; ++i) {
      ASSERT_TRUE(db->Insert({1'000'000 + i, 1'000'000 - i, i}).ok());
    }
    for (size_t i = 0; i < 10; ++i) {
      ASSERT_TRUE(db->Delete(rows[i * 131]).ok());
    }
    ASSERT_GT(db->delta_inserts(), 0u) << index;
    ASSERT_GT(db->delta_tombstones(), 0u) << index;

    ServerOptions sopts;
    SocketPath sock(index);
    sopts.uds_path = sock.path;
    StatusOr<std::unique_ptr<Server>> server =
        Server::Create(&*db, std::move(sopts));
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    (*server)->Start();

    StatusOr<Client> client = Client::Connect("unix:" + sock.path);
    ASSERT_TRUE(client.ok()) << client.status().ToString();

    const BatchResult local = db->RunBatch(queries);
    ASSERT_TRUE(local.status.ok());
    StatusOr<BatchResultResponse> wire = client->RunBatch(queries);
    ASSERT_TRUE(wire.ok()) << wire.status().ToString();
    ASSERT_EQ(wire->code, WireCode::kOk) << wire->message;
    ASSERT_EQ(wire->results.size(), local.results.size()) << index;
    for (size_t i = 0; i < queries.size(); ++i) {
      EXPECT_EQ(wire->results[i].count, local.results[i].count)
          << index << " query " << i;
      EXPECT_EQ(wire->results[i].sum, local.results[i].sum)
          << index << " query " << i;
      EXPECT_EQ(wire->results[i].kind == 1,
                local.results[i].kind == QueryResult::Kind::kSum)
          << index << " query " << i;
      EXPECT_EQ(wire->results[i].skipped_empty,
                local.results[i].skipped_empty)
          << index << " query " << i;
    }

    (*server)->Shutdown();
    (*server)->Join();
    ++tested;
  }
  // The registry always has at least the core indexes; a regression that
  // silently skips everything must fail loudly.
  EXPECT_GE(tested, 5u);
}

// ---------------------------------------------------------------------------
// Writes over the wire.
// ---------------------------------------------------------------------------

TEST(ServeServerTest, WireWritesAreVisibleToSubsequentQueries) {
  const Table table = MakeTable(DataShape::kUniform, 3'000, 3, 72);
  StatusOr<Database> db = OpenDb(table, "kdtree", 2);
  ASSERT_TRUE(db.ok());

  ServerOptions sopts;
  SocketPath sock("writes");
  sopts.uds_path = sock.path;
  auto server = Server::Create(&*db, std::move(sopts));
  ASSERT_TRUE(server.ok());
  (*server)->Start();

  auto client = Client::Connect("unix:" + sock.path);
  ASSERT_TRUE(client.ok());

  Query all(3);
  const std::vector<Query> probe = {all};
  auto before = client->RunBatch(probe);
  ASSERT_TRUE(before.ok());
  const uint64_t count0 = before->results[0].count;

  ASSERT_TRUE(client->Insert({1, 2, 3}).ok());
  std::vector<std::vector<Value>> batch_rows = {{4, 5, 6}, {7, 8, 9}};
  ASSERT_TRUE(client->InsertBatch(batch_rows).ok());

  auto after = client->RunBatch(probe);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->results[0].count, count0 + 3);

  StatusOr<uint64_t> deleted = client->Delete({4, 5, 6});
  ASSERT_TRUE(deleted.ok());
  EXPECT_EQ(*deleted, 1u);
  auto final_count = client->RunBatch(probe);
  ASSERT_TRUE(final_count.ok());
  EXPECT_EQ(final_count->results[0].count, count0 + 2);

  // The staged writes are visible in-process too — same delta.
  EXPECT_EQ(db->num_rows(), static_cast<size_t>(count0 + 2));

  (*server)->Shutdown();
  (*server)->Join();
}

// ---------------------------------------------------------------------------
// Admission control: typed kOverloaded sheds; Ping stays responsive.
// ---------------------------------------------------------------------------

TEST(ServeServerTest, PerConnectionCapShedsWithTypedOverloadedError) {
  const Table table = MakeTable(DataShape::kUniform, 50'000, 3, 73);
  StatusOr<Database> db = OpenDb(table, "full_scan", 2);
  ASSERT_TRUE(db.ok());

  ServerOptions sopts;
  SocketPath sock("shed");
  sopts.uds_path = sock.path;
  sopts.max_inflight_per_connection = 1;
  auto server = Server::Create(&*db, std::move(sopts));
  ASSERT_TRUE(server.ok());
  (*server)->Start();

  // Two RunBatch frames in ONE send: the server processes them in one read
  // burst, so the second deterministically exceeds the per-connection
  // in-flight cap of 1 and is shed — while the first still executes.
  const std::vector<Query> queries = MakeQueries(table, 8, 1000);
  RunBatchRequest req1;
  req1.request_id = 101;
  req1.queries = queries;
  RunBatchRequest req2;
  req2.request_id = 102;
  req2.queries = queries;
  std::string burst;
  AppendRunBatch(req1, &burst);
  AppendRunBatch(req2, &burst);

  RawConn conn(sock.path);
  ASSERT_GE(conn.fd, 0);
  ASSERT_TRUE(conn.SendAll(burst));

  // While that batch runs, Ping on a second connection stays responsive.
  auto pinger = Client::Connect("unix:" + sock.path);
  ASSERT_TRUE(pinger.ok());
  EXPECT_TRUE(pinger->Ping().ok());

  bool got_ok = false;
  bool got_shed = false;
  for (int i = 0; i < 2; ++i) {
    Frame frame;
    ASSERT_TRUE(conn.NextFrame(&frame));
    if (frame.type == MessageType::kError) {
      StatusOr<ErrorResponse> err = ParseError(frame.payload);
      ASSERT_TRUE(err.ok());
      EXPECT_EQ(err->request_id, 102u);
      EXPECT_EQ(err->code, WireCode::kOverloaded);
      got_shed = true;
    } else {
      ASSERT_EQ(frame.type, MessageType::kBatchResult);
      StatusOr<BatchResultResponse> resp = ParseBatchResult(frame.payload);
      ASSERT_TRUE(resp.ok());
      EXPECT_EQ(resp->request_id, 101u);
      EXPECT_EQ(resp->code, WireCode::kOk);
      EXPECT_EQ(resp->results.size(), queries.size());
      got_ok = true;
    }
  }
  EXPECT_TRUE(got_ok);
  EXPECT_TRUE(got_shed);

  // The shed didn't kill the connection: it is still fully usable.
  RunBatchRequest req3;
  req3.request_id = 103;
  req3.queries = {queries[0]};
  std::string again;
  AppendRunBatch(req3, &again);
  ASSERT_TRUE(conn.SendAll(again));
  Frame frame;
  ASSERT_TRUE(conn.NextFrame(&frame));
  EXPECT_EQ(frame.type, MessageType::kBatchResult);

  const ServerCounters counters = (*server)->counters();
  EXPECT_GE(counters.requests_shed, 1u);

  (*server)->Shutdown();
  (*server)->Join();
}

TEST(ServeServerTest, ZeroQueueSlotsShedEverythingYetPingAndStatsWork) {
  // max_inflight_batches = 0: every RunBatch is shed at admission — the
  // degenerate configuration proves the overloaded server stays fully
  // observable (Ping AND Stats answered from the event loop).
  const Table table = MakeTable(DataShape::kUniform, 2'000, 3, 74);
  StatusOr<Database> db = OpenDb(table, "kdtree", 2);
  ASSERT_TRUE(db.ok());

  ServerOptions sopts;
  SocketPath sock("zeroq");
  sopts.uds_path = sock.path;
  sopts.max_inflight_batches = 0;
  auto server = Server::Create(&*db, std::move(sopts));
  ASSERT_TRUE(server.ok());
  (*server)->Start();

  auto client = Client::Connect("unix:" + sock.path);
  ASSERT_TRUE(client.ok());

  const std::vector<Query> queries = MakeQueries(table, 4, 1100);
  for (int i = 0; i < 3; ++i) {
    auto reply = client->RunBatch(queries);
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    EXPECT_EQ(reply->code, WireCode::kOverloaded);
    EXPECT_TRUE(reply->results.empty());
    EXPECT_TRUE(client->Ping().ok());  // Liveness under total overload.
  }
  auto stats = client->Stats();
  ASSERT_TRUE(stats.ok());
  double shed = -1;
  for (const auto& [key, value] : *stats) {
    if (key == "serve.requests_shed") shed = value;
  }
  EXPECT_EQ(shed, 3.0);

  (*server)->Shutdown();
  (*server)->Join();
}

// ---------------------------------------------------------------------------
// Observability counters (same introspection-map shape as the persistence
// telemetry).
// ---------------------------------------------------------------------------

TEST(ServeServerTest, CountersTrackAScriptedSession) {
  const Table table = MakeTable(DataShape::kUniform, 3'000, 3, 75);
  StatusOr<Database> db = OpenDb(table, "kdtree", 2);
  ASSERT_TRUE(db.ok());

  ServerOptions sopts;
  SocketPath sock("counters");
  sopts.uds_path = sock.path;
  auto server = Server::Create(&*db, std::move(sopts));
  ASSERT_TRUE(server.ok());
  (*server)->Start();

  auto client = Client::Connect("unix:" + sock.path);
  ASSERT_TRUE(client.ok());

  ASSERT_TRUE(client->Ping().ok());
  const std::vector<Query> queries = MakeQueries(table, 10, 1200);
  ASSERT_TRUE(client->RunBatch(queries).ok());
  ASSERT_TRUE(client->RunBatch(queries).ok());
  ASSERT_TRUE(client->Insert({1, 2, 3}).ok());

  const ServerCounters c = (*server)->counters();
  EXPECT_EQ(c.connections_accepted, 1u);
  EXPECT_EQ(c.connections_active, 1u);
  // Ping + 2 RunBatch + Insert = 4 decoded frames.
  EXPECT_EQ(c.frames_decoded, 4u);
  EXPECT_EQ(c.batches_submitted, 2u);
  EXPECT_EQ(c.queries_executed, 2 * queries.size());
  EXPECT_EQ(c.writes_applied, 1u);
  EXPECT_EQ(c.requests_shed, 0u);
  EXPECT_EQ(c.bad_frames, 0u);
  EXPECT_GT(c.bytes_in, 0u);
  EXPECT_GT(c.bytes_out, 0u);
  EXPECT_EQ(c.queue_depth, 0u);  // Everything answered.
  EXPECT_GE(c.queue_depth_hwm, 1u);

  // Introspect() flattens the same counters, plus database gauges — one
  // map shape across the whole stack (persistence telemetry, index
  // DebugProperties, serving).
  const auto entries = (*server)->Introspect();
  auto get = [&entries](const std::string& key) -> double {
    for (const auto& [k, v] : entries) {
      if (k == key) return v;
    }
    return -1.0;
  };
  EXPECT_EQ(get("serve.frames_decoded"), 4.0);
  EXPECT_EQ(get("serve.batches_submitted"), 2.0);
  EXPECT_EQ(get("serve.connections_active"), 1.0);
  EXPECT_EQ(get("db.pending_writes"), 1.0);
  EXPECT_EQ(get("db.num_threads"), 2.0);
  EXPECT_GE(get("db.queries_run"), 20.0);
  // Scan-kernel telemetry is present (>= 0; which counter advances
  // depends on the active kernel and zone-map outcomes).
  EXPECT_GE(get("db.blocks_skipped"), 0.0);
  EXPECT_GE(get("db.blocks_exact"), 0.0);
  EXPECT_GE(get("db.simd_blocks"), 0.0);

  // And the wire Stats response carries the identical map.
  auto wire_stats = client->Stats();
  ASSERT_TRUE(wire_stats.ok());
  auto wire_get = [&wire_stats](const std::string& key) -> double {
    for (const auto& [k, v] : *wire_stats) {
      if (k == key) return v;
    }
    return -1.0;
  };
  EXPECT_EQ(wire_get("serve.batches_submitted"), 2.0);
  EXPECT_EQ(wire_get("db.pending_writes"), 1.0);

  (*server)->Shutdown();
  (*server)->Join();
}

// ---------------------------------------------------------------------------
// Corruption handling at the socket boundary.
// ---------------------------------------------------------------------------

TEST(ServeServerTest, GarbageBytesGetTypedErrorThenConnectionCloses) {
  const Table table = MakeTable(DataShape::kUniform, 2'000, 3, 76);
  StatusOr<Database> db = OpenDb(table, "kdtree", 1);
  ASSERT_TRUE(db.ok());

  ServerOptions sopts;
  SocketPath sock("garbage");
  sopts.uds_path = sock.path;
  auto server = Server::Create(&*db, std::move(sopts));
  ASSERT_TRUE(server.ok());
  (*server)->Start();

  {
    RawConn conn(sock.path);
    ASSERT_GE(conn.fd, 0);
    ASSERT_TRUE(conn.SendAll("GET / HTTP/1.1\r\nHost: nope\r\n\r\n"));
    Frame frame;
    ASSERT_TRUE(conn.NextFrame(&frame));
    ASSERT_EQ(frame.type, MessageType::kError);
    StatusOr<ErrorResponse> err = ParseError(frame.payload);
    ASSERT_TRUE(err.ok());
    EXPECT_EQ(err->code, WireCode::kBadFrame);
    EXPECT_TRUE(conn.WaitForClose());
  }
  {
    // A valid frame followed by a flipped-CRC frame: the first one is
    // answered, then the typed error, then close.
    RawConn conn(sock.path);
    ASSERT_GE(conn.fd, 0);
    std::string bytes;
    AppendPing({1}, &bytes);
    std::string broken;
    AppendPing({2}, &broken);
    broken[12] = static_cast<char>(broken[12] ^ 0x55);
    bytes += broken;
    ASSERT_TRUE(conn.SendAll(bytes));
    Frame frame;
    ASSERT_TRUE(conn.NextFrame(&frame));
    EXPECT_EQ(frame.type, MessageType::kPong);
    ASSERT_TRUE(conn.NextFrame(&frame));
    ASSERT_EQ(frame.type, MessageType::kError);
    StatusOr<ErrorResponse> err = ParseError(frame.payload);
    ASSERT_TRUE(err.ok());
    EXPECT_EQ(err->code, WireCode::kBadFrame);
    EXPECT_TRUE(conn.WaitForClose());
  }

  const ServerCounters c = (*server)->counters();
  EXPECT_GE(c.bad_frames, 2u);

  (*server)->Shutdown();
  (*server)->Join();
}

// ---------------------------------------------------------------------------
// Drain.
// ---------------------------------------------------------------------------

TEST(ServeServerTest, ShutdownDrainsInFlightWorkThenCloses) {
  const Table table = MakeTable(DataShape::kUniform, 50'000, 3, 77);
  StatusOr<Database> db = OpenDb(table, "full_scan", 2);
  ASSERT_TRUE(db.ok());

  ServerOptions sopts;
  SocketPath sock("drain");
  sopts.uds_path = sock.path;
  auto server = Server::Create(&*db, std::move(sopts));
  ASSERT_TRUE(server.ok());
  (*server)->Start();

  // Submit a heavy batch, then immediately initiate the drain: the batch
  // was admitted, so its full result must still arrive before the server
  // closes the connection and exits.
  const std::vector<Query> queries = MakeQueries(table, 16, 1300);
  RunBatchRequest req;
  req.request_id = 555;
  req.queries = queries;
  std::string bytes;
  AppendRunBatch(req, &bytes);

  RawConn conn(sock.path);
  ASSERT_GE(conn.fd, 0);
  ASSERT_TRUE(conn.SendAll(bytes));
  (*server)->Shutdown();

  Frame frame;
  ASSERT_TRUE(conn.NextFrame(&frame));
  if (frame.type == MessageType::kBatchResult) {
    // Admitted before the drain began: full results.
    StatusOr<BatchResultResponse> resp = ParseBatchResult(frame.payload);
    ASSERT_TRUE(resp.ok());
    EXPECT_EQ(resp->request_id, 555u);
    EXPECT_EQ(resp->code, WireCode::kOk);
    EXPECT_EQ(resp->results.size(), queries.size());
  } else {
    // The drain won the race to the admission check: typed shed.
    ASSERT_EQ(frame.type, MessageType::kError);
    StatusOr<ErrorResponse> err = ParseError(frame.payload);
    ASSERT_TRUE(err.ok());
    EXPECT_EQ(err->code, WireCode::kShuttingDown);
  }
  EXPECT_TRUE(conn.WaitForClose());

  (*server)->Join();  // Run() must have returned: the drain completed.

  // New connections are refused after the drain (socket file removed).
  RawConn late(sock.path);
  EXPECT_LT(late.fd, 0);
}

TEST(ServeServerTest, IdleConnectionsAreSweptAndCounted) {
  const Table table = MakeTable(DataShape::kUniform, 2'000, 3, 78);
  StatusOr<Database> db = OpenDb(table, "kdtree", 1);
  ASSERT_TRUE(db.ok());

  ServerOptions sopts;
  SocketPath sock("idle");
  sopts.uds_path = sock.path;
  sopts.idle_timeout_ms = 50;
  auto server = Server::Create(&*db, std::move(sopts));
  ASSERT_TRUE(server.ok());
  (*server)->Start();

  RawConn conn(sock.path);
  ASSERT_GE(conn.fd, 0);
  std::string ping;
  AppendPing({1}, &ping);
  ASSERT_TRUE(conn.SendAll(ping));
  Frame frame;
  ASSERT_TRUE(conn.NextFrame(&frame));
  EXPECT_EQ(frame.type, MessageType::kPong);
  // Now go silent; the sweep must close us.
  EXPECT_TRUE(conn.WaitForClose());
  EXPECT_GE((*server)->counters().connections_closed_idle, 1u);

  (*server)->Shutdown();
  (*server)->Join();
}

// ---------------------------------------------------------------------------
// TCP listener.
// ---------------------------------------------------------------------------

TEST(ServeServerTest, TcpLoopbackServesTheSameProtocol) {
  const Table table = MakeTable(DataShape::kUniform, 3'000, 3, 79);
  StatusOr<Database> db = OpenDb(table, "kdtree", 2);
  ASSERT_TRUE(db.ok());

  ServerOptions sopts;
  sopts.listen_tcp = true;
  sopts.tcp_port = 0;  // Kernel-assigned.
  auto server = Server::Create(&*db, std::move(sopts));
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  ASSERT_NE((*server)->tcp_port(), 0);
  (*server)->Start();

  auto client = Client::Connect("127.0.0.1:" +
                                std::to_string((*server)->tcp_port()));
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  ASSERT_TRUE(client->Ping().ok());

  const std::vector<Query> queries = MakeQueries(table, 12, 1400);
  const BatchResult local = db->RunBatch(queries);
  auto wire = client->RunBatch(queries);
  ASSERT_TRUE(wire.ok());
  ASSERT_EQ(wire->code, WireCode::kOk);
  ASSERT_EQ(wire->results.size(), local.results.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(wire->results[i].count, local.results[i].count);
    EXPECT_EQ(wire->results[i].sum, local.results[i].sum);
  }

  (*server)->Shutdown();
  (*server)->Join();
}

// ---------------------------------------------------------------------------
// Pipelining: many frames in flight on one connection, replies matched by
// request id.
// ---------------------------------------------------------------------------

TEST(ServeServerTest, PipelinedFramesAllAnsweredAndMatchedById) {
  const Table table = MakeTable(DataShape::kUniform, 5'000, 3, 80);
  StatusOr<Database> db = OpenDb(table, "kdtree", 4);
  ASSERT_TRUE(db.ok());

  ServerOptions sopts;
  SocketPath sock("pipeline");
  sopts.uds_path = sock.path;
  sopts.max_inflight_per_connection = 64;
  auto server = Server::Create(&*db, std::move(sopts));
  ASSERT_TRUE(server.ok());
  (*server)->Start();

  auto client = Client::Connect("unix:" + sock.path);
  ASSERT_TRUE(client.ok());

  constexpr uint64_t kFrames = 32;
  const std::vector<Query> queries = MakeQueries(table, 5, 1500);
  const BatchResult local = db->RunBatch(queries);
  for (uint64_t id = 1; id <= kFrames; ++id) {
    ASSERT_TRUE(client->SendRunBatch(id, queries).ok());
  }
  std::vector<bool> seen(kFrames + 1, false);
  for (uint64_t i = 0; i < kFrames; ++i) {
    auto reply = client->ReadBatchReply();
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    ASSERT_EQ(reply->code, WireCode::kOk) << reply->message;
    ASSERT_GE(reply->request_id, 1u);
    ASSERT_LE(reply->request_id, kFrames);
    EXPECT_FALSE(seen[reply->request_id]) << "duplicate reply";
    seen[reply->request_id] = true;
    ASSERT_EQ(reply->results.size(), local.results.size());
    for (size_t q = 0; q < queries.size(); ++q) {
      EXPECT_EQ(reply->results[q].count, local.results[q].count);
      EXPECT_EQ(reply->results[q].sum, local.results[q].sum);
    }
  }

  // Fewer batch submissions than frames proves per-connection batching
  // actually grouped pipelined frames (at least some read burst carried
  // more than one frame). With 32 frames written back-to-back this holds
  // in practice; assert the weak direction only (no inflation).
  const ServerCounters c = (*server)->counters();
  EXPECT_LE(c.batches_submitted, kFrames);
  EXPECT_EQ(c.queries_executed, kFrames * queries.size());

  (*server)->Shutdown();
  (*server)->Join();
}

}  // namespace
}  // namespace serve
}  // namespace flood
