// ShardMap unit tests (bounds validation, quantile learning, routing
// lookups) plus the core ShardedDatabase acceptance property: a sharded
// facade over N partitions answers every query bit-identically to one
// unsharded Database over the same table — including with staged writes
// and tombstones in flight, and for Collect with global-id rebasing.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "api/index_registry.h"
#include "api/shard_map.h"
#include "api/sharded_database.h"
#include "tests/test_util.h"

namespace flood {
namespace {

using flood::testing::DataShape;
using flood::testing::MakeTable;
using flood::testing::RandomQuery;
using flood::testing::RowsOf;

// ---------------------------------------------------------------------------
// ShardMap: explicit bounds.
// ---------------------------------------------------------------------------

TEST(ShardMapTest, DefaultIsSingleShard) {
  const ShardMap map(2);
  EXPECT_EQ(map.sort_dim(), 2u);
  EXPECT_EQ(map.num_shards(), 1u);
  EXPECT_EQ(map.ShardForValue(kValueMin), 0u);
  EXPECT_EQ(map.ShardForValue(0), 0u);
  EXPECT_EQ(map.ShardForValue(kValueMax), 0u);
  EXPECT_TRUE(map.RangeOf(0).IsFullRange());
}

TEST(ShardMapTest, FromBoundsPartitionsTheValueSpace) {
  StatusOr<ShardMap> map = ShardMap::FromBounds(0, {100, 500});
  ASSERT_TRUE(map.ok());
  EXPECT_EQ(map->num_shards(), 3u);

  // Shard ranges tile the space: no gaps, no overlap.
  EXPECT_EQ(map->RangeOf(0).lo, kValueMin);
  EXPECT_EQ(map->RangeOf(0).hi, 99);
  EXPECT_EQ(map->RangeOf(1).lo, 100);
  EXPECT_EQ(map->RangeOf(1).hi, 499);
  EXPECT_EQ(map->RangeOf(2).lo, 500);
  EXPECT_EQ(map->RangeOf(2).hi, kValueMax);

  // Point lookups agree with the ranges, including at the boundaries.
  EXPECT_EQ(map->ShardForValue(99), 0u);
  EXPECT_EQ(map->ShardForValue(100), 1u);
  EXPECT_EQ(map->ShardForValue(499), 1u);
  EXPECT_EQ(map->ShardForValue(500), 2u);
  EXPECT_EQ(map->ShardForValue(kValueMin), 0u);
  EXPECT_EQ(map->ShardForValue(kValueMax), 2u);
}

TEST(ShardMapTest, FromBoundsRejectsBadBounds) {
  EXPECT_FALSE(ShardMap::FromBounds(0, {500, 100}).ok());   // Decreasing.
  EXPECT_FALSE(ShardMap::FromBounds(0, {100, 100}).ok());   // Duplicate.
  EXPECT_FALSE(ShardMap::FromBounds(0, {kValueMin}).ok());  // Empty shard 0.
}

TEST(ShardMapTest, ShardsForRangeClipsToIntersectingShards) {
  StatusOr<ShardMap> map = ShardMap::FromBounds(0, {100, 500});
  ASSERT_TRUE(map.ok());

  const auto one = map->ShardsForRange({150, 300});
  EXPECT_EQ(one.first, 1u);
  EXPECT_EQ(one.second, 1u);

  const auto straddle = map->ShardsForRange({99, 100});
  EXPECT_EQ(straddle.first, 0u);
  EXPECT_EQ(straddle.second, 1u);

  const auto all = map->ShardsForRange({kValueMin, kValueMax});
  EXPECT_EQ(all.first, 0u);
  EXPECT_EQ(all.second, 2u);
}

TEST(ShardMapTest, ShardsForQueryBroadcastsWithoutSortDimFilter) {
  StatusOr<ShardMap> map = ShardMap::FromBounds(0, {100, 500});
  ASSERT_TRUE(map.ok());

  Query unfiltered(3);
  unfiltered.SetRange(1, 0, 10);  // Filters dim 1, not the sort dim.
  const auto span = map->ShardsForQuery(unfiltered);
  EXPECT_EQ(span.first, 0u);
  EXPECT_EQ(span.second, 2u);

  Query pinned(3);
  pinned.SetEquals(0, 250);
  const auto one = map->ShardsForQuery(pinned);
  EXPECT_EQ(one.first, 1u);
  EXPECT_EQ(one.second, 1u);
}

// ---------------------------------------------------------------------------
// ShardMap: quantile learning.
// ---------------------------------------------------------------------------

TEST(ShardMapTest, FromQuantilesBalancesRowCounts) {
  const Table table = MakeTable(DataShape::kSkewed, 10'000, 2, 17);
  const ShardMap map = ShardMap::FromQuantiles(table, 0, 4);
  ASSERT_EQ(map.num_shards(), 4u);

  // Count the rows each shard owns: quantile cuts must balance them to
  // within the duplicate-run slack (values are never split across shards).
  std::vector<size_t> owned(map.num_shards(), 0);
  for (RowId r = 0; r < table.num_rows(); ++r) {
    ++owned[map.ShardForValue(table.Get(r, 0))];
  }
  for (size_t s = 0; s < owned.size(); ++s) {
    EXPECT_GT(owned[s], 0u) << "shard " << s << " owns no rows";
    EXPECT_LT(owned[s], table.num_rows() / 2) << "shard " << s;
  }
}

TEST(ShardMapTest, FromQuantilesCollapsesDuplicateHeavyColumns) {
  // A 12-value Zipf column cannot support 64 shards: the map must
  // collapse to fewer, never emit an empty shard, and still tile.
  const Table table = MakeTable(DataShape::kDuplicates, 5'000, 2, 23);
  const ShardMap map = ShardMap::FromQuantiles(table, 0, 64);
  ASSERT_GE(map.num_shards(), 1u);
  ASSERT_LE(map.num_shards(), 12u);

  std::vector<size_t> owned(map.num_shards(), 0);
  for (RowId r = 0; r < table.num_rows(); ++r) {
    ++owned[map.ShardForValue(table.Get(r, 0))];
  }
  for (size_t s = 0; s < owned.size(); ++s) {
    EXPECT_GT(owned[s], 0u) << "shard " << s << " owns no rows";
  }
}

TEST(ShardMapTest, FromQuantilesSingleShardAndToString) {
  const Table table = MakeTable(DataShape::kUniform, 1'000, 2, 29);
  const ShardMap one = ShardMap::FromQuantiles(table, 1, 1);
  EXPECT_EQ(one.num_shards(), 1u);
  EXPECT_EQ(one.sort_dim(), 1u);
  EXPECT_NE(one.ToString().find("dim 1"), std::string::npos);

  const ShardMap two = ShardMap::FromQuantiles(table, 0, 2);
  EXPECT_NE(two.ToString().find(".."), std::string::npos);
}

// ---------------------------------------------------------------------------
// ShardedDatabase: bit-equivalence to one unsharded Database.
// ---------------------------------------------------------------------------

StatusOr<ShardedDatabase> OpenSharded(const Table& table,
                                      const std::string& index,
                                      size_t num_shards) {
  ShardedDatabaseOptions options;
  options.num_shards = num_shards;
  options.sort_dim = 0;
  options.shard_options.index_name = index;
  options.shard_options.num_threads = 2;
  if (index == "flood") {
    Workload train;
    for (uint64_t s = 0; s < 20; ++s) {
      train.Add(RandomQuery(table, 5000 + s));
    }
    options.shard_options.training_workload = std::move(train);
  }
  return ShardedDatabase::Open(table, options);
}

TEST(ShardedDatabaseTest, MatchesUnshardedDatabaseWithWritesInFlight) {
  const Table table = MakeTable(DataShape::kClustered, 4'000, 3, 71);
  const std::vector<std::vector<Value>> rows = RowsOf(table);

  DatabaseOptions options;
  options.num_threads = 2;
  StatusOr<Database> single = Database::Open(table, std::move(options));
  ASSERT_TRUE(single.ok());
  StatusOr<ShardedDatabase> sharded = OpenSharded(table, "kdtree", 3);
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
  EXPECT_EQ(sharded->num_shards(), 3u);
  EXPECT_EQ(sharded->num_rows(), single->num_rows());

  // The same staged writes on both sides: inserts AND tombstones, NOT
  // compacted, so the sharded read path must merge base + delta per shard.
  for (Value i = 0; i < 30; ++i) {
    const std::vector<Value> row = {1'000'000 + i, 1'000'000 - i, i};
    ASSERT_TRUE(single->Insert(row).ok());
    ASSERT_TRUE(sharded->Insert(row).ok());
  }
  for (size_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(single->Delete(rows[i * 131]).ok());
    ASSERT_TRUE(sharded->Delete(rows[i * 131]).ok());
  }
  EXPECT_EQ(sharded->num_rows(), single->num_rows());
  EXPECT_GT(sharded->pending_writes(), 0u);

  std::vector<Query> queries;
  for (size_t i = 0; i < 60; ++i) {
    Query q = RandomQuery(table, 900 + i);
    if (i % 3 == 0) q.set_agg({AggSpec::Kind::kSum, i % table.num_dims()});
    queries.push_back(std::move(q));
  }
  queries.push_back(Query(3));  // Unfiltered: broadcast to every shard.
  Query empty(3);
  empty.SetRange(0, 10, 5);  // lo > hi: short-circuits without a scatter.
  queries.push_back(empty);

  const BatchResult want = single->RunBatch(queries);
  ASSERT_TRUE(want.status.ok());
  const BatchResult got = sharded->RunBatch(queries);
  ASSERT_TRUE(got.status.ok());
  ASSERT_EQ(got.results.size(), want.results.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(got.results[i].count, want.results[i].count) << "query " << i;
    EXPECT_EQ(got.results[i].sum, want.results[i].sum) << "query " << i;
    EXPECT_EQ(got.results[i].kind, want.results[i].kind) << "query " << i;
    EXPECT_EQ(got.results[i].skipped_empty, want.results[i].skipped_empty)
        << "query " << i;
  }

  // TryRun agrees with RunBatch for a single query.
  StatusOr<QueryResult> lone = sharded->TryRun(queries[0]);
  ASSERT_TRUE(lone.ok());
  EXPECT_EQ(lone->count, want.results[0].count);
}

TEST(ShardedDatabaseTest, MatchesUnshardedForEveryRegisteredIndex) {
  const Table table = MakeTable(DataShape::kUniform, 3'000, 3, 77);
  std::vector<Query> queries;
  for (size_t i = 0; i < 25; ++i) {
    Query q = RandomQuery(table, 1300 + i);
    if (i % 3 == 0) q.set_agg({AggSpec::Kind::kSum, i % table.num_dims()});
    queries.push_back(std::move(q));
  }

  size_t tested = 0;
  for (const std::string& index : IndexRegistry::Global().Names()) {
    DatabaseOptions options;
    options.index_name = index;
    options.num_threads = 2;
    if (index == "flood") {
      Workload train;
      for (uint64_t s = 0; s < 20; ++s) {
        train.Add(RandomQuery(table, 5000 + s));
      }
      options.training_workload = std::move(train);
    }
    StatusOr<Database> single = Database::Open(table, std::move(options));
    if (!single.ok()) continue;  // e.g. grid-file budget: N/A here.
    StatusOr<ShardedDatabase> sharded = OpenSharded(table, index, 4);
    if (!sharded.ok()) continue;

    const BatchResult want = single->RunBatch(queries);
    const BatchResult got = sharded->RunBatch(queries);
    ASSERT_TRUE(want.status.ok()) << index;
    ASSERT_TRUE(got.status.ok()) << index;
    for (size_t i = 0; i < queries.size(); ++i) {
      EXPECT_EQ(got.results[i].count, want.results[i].count)
          << index << " query " << i;
      EXPECT_EQ(got.results[i].sum, want.results[i].sum)
          << index << " query " << i;
    }
    ++tested;
  }
  EXPECT_GE(tested, 5u);
}

TEST(ShardedDatabaseTest, SingleShardIsTheIdentity) {
  const Table table = MakeTable(DataShape::kCorrelated, 2'000, 2, 31);
  StatusOr<ShardedDatabase> sharded = OpenSharded(table, "kdtree", 1);
  ASSERT_TRUE(sharded.ok());
  EXPECT_EQ(sharded->num_shards(), 1u);
  EXPECT_EQ(sharded->num_rows(), table.num_rows());

  DatabaseOptions options;
  options.num_threads = 2;
  StatusOr<Database> single = Database::Open(table, std::move(options));
  ASSERT_TRUE(single.ok());
  for (size_t i = 0; i < 10; ++i) {
    const Query q = RandomQuery(table, 400 + i);
    EXPECT_EQ(sharded->Run(q).count, single->Run(q).count) << i;
  }
}

TEST(ShardedDatabaseTest, CollectRebasesIdsIntoOneGlobalSpace) {
  const Table table = MakeTable(DataShape::kUniform, 2'500, 3, 41);
  StatusOr<ShardedDatabase> sharded = OpenSharded(table, "kdtree", 3);
  ASSERT_TRUE(sharded.ok());
  // Staged inserts widen shard id spaces unevenly before the collect.
  for (Value i = 0; i < 9; ++i) {
    ASSERT_TRUE(sharded->Insert({i * 137, 50 + i, 900 - i}).ok());
  }

  DatabaseOptions options;
  options.num_threads = 2;
  StatusOr<Database> single = Database::Open(table, std::move(options));
  ASSERT_TRUE(single.ok());
  for (Value i = 0; i < 9; ++i) {
    ASSERT_TRUE(single->Insert({i * 137, 50 + i, 900 - i}).ok());
  }

  Query q(3);
  q.SetRange(0, 0, 600'000);  // Straddles shard boundaries.
  q.SetRange(1, 0, 500'000);
  StatusOr<QueryResult> got = sharded->TryCollect(q);
  StatusOr<QueryResult> want = single->TryCollect(q);
  ASSERT_TRUE(got.ok());
  ASSERT_TRUE(want.ok());
  ASSERT_EQ(got->rows.size(), want->rows.size());

  // Global ids are unique and resolve — through the facade — to exactly
  // the same multiset of tuples the unsharded database returns.
  std::set<RowId> unique(got->rows.begin(), got->rows.end());
  EXPECT_EQ(unique.size(), got->rows.size());
  std::vector<std::vector<Value>> got_rows;
  std::vector<std::vector<Value>> want_rows;
  for (size_t i = 0; i < got->rows.size(); ++i) {
    StatusOr<std::vector<Value>> row = sharded->TryGetRow(got->rows[i]);
    ASSERT_TRUE(row.ok()) << "global id " << got->rows[i];
    got_rows.push_back(*std::move(row));
    StatusOr<std::vector<Value>> wrow = single->TryGetRow(want->rows[i]);
    ASSERT_TRUE(wrow.ok());
    want_rows.push_back(*std::move(wrow));
  }
  std::sort(got_rows.begin(), got_rows.end());
  std::sort(want_rows.begin(), want_rows.end());
  EXPECT_EQ(got_rows, want_rows);

  // An out-of-range global id is a typed error, not a crash.
  EXPECT_FALSE(sharded->TryGetRow(1u << 30).ok());
}

TEST(ShardedDatabaseTest, ValidatesArityAndOptions) {
  const Table table = MakeTable(DataShape::kUniform, 500, 2, 51);
  ShardedDatabaseOptions bad_dim;
  bad_dim.sort_dim = 7;
  EXPECT_FALSE(ShardedDatabase::Open(table, bad_dim).ok());
  ShardedDatabaseOptions no_shards;
  no_shards.num_shards = 0;
  EXPECT_FALSE(ShardedDatabase::Open(table, no_shards).ok());

  StatusOr<ShardedDatabase> db = OpenSharded(table, "kdtree", 2);
  ASSERT_TRUE(db.ok());
  EXPECT_FALSE(db->Insert({1, 2, 3}).ok());        // 3 values, 2 dims.
  EXPECT_FALSE(db->Delete({1}).ok());              // 1 value, 2 dims.
  EXPECT_FALSE(db->TryRun(Query(3)).ok());         // 3-dim query, 2 dims.
  const BatchResult bad = db->RunBatch(std::vector<Query>{Query(3)});
  EXPECT_FALSE(bad.status.ok());
  EXPECT_TRUE(bad.results.empty());
}

}  // namespace
}  // namespace flood
