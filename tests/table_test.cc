#include <gtest/gtest.h>

#include "storage/table.h"

namespace flood {
namespace {

TEST(TableTest, FromColumnsBasics) {
  StatusOr<Table> t = Table::FromColumns({{1, 2, 3}, {4, 5, 6}});
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->num_rows(), 3u);
  EXPECT_EQ(t->num_dims(), 2u);
  EXPECT_EQ(t->Get(0, 0), 1);
  EXPECT_EQ(t->Get(2, 1), 6);
  EXPECT_EQ(t->name(0), "dim0");
  EXPECT_EQ(t->name(1), "dim1");
}

TEST(TableTest, NamedColumns) {
  StatusOr<Table> t = Table::FromColumns(
      {{1}, {2}}, Column::Encoding::kPlain, {"a", "b"});
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->name(0), "a");
  EXPECT_EQ(t->name(1), "b");
}

TEST(TableTest, RejectsEmptyColumnList) {
  StatusOr<Table> t = Table::FromColumns({});
  EXPECT_FALSE(t.ok());
  EXPECT_EQ(t.status().code(), StatusCode::kInvalidArgument);
}

TEST(TableTest, RejectsRaggedColumns) {
  StatusOr<Table> t = Table::FromColumns({{1, 2}, {3}});
  EXPECT_FALSE(t.ok());
}

TEST(TableTest, RejectsNameArityMismatch) {
  StatusOr<Table> t =
      Table::FromColumns({{1}, {2}}, Column::Encoding::kPlain, {"only_one"});
  EXPECT_FALSE(t.ok());
}

TEST(TableTest, MinMaxPrecomputed) {
  StatusOr<Table> t = Table::FromColumns({{5, -2, 9, 0}});
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->min_value(0), -2);
  EXPECT_EQ(t->max_value(0), 9);
}

TEST(TableTest, ReorderPermutesRows) {
  StatusOr<Table> t = Table::FromColumns({{10, 20, 30}, {1, 2, 3}});
  ASSERT_TRUE(t.ok());
  const Table r = t->Reorder({2, 0, 1});
  EXPECT_EQ(r.Get(0, 0), 30);
  EXPECT_EQ(r.Get(1, 0), 10);
  EXPECT_EQ(r.Get(2, 0), 20);
  EXPECT_EQ(r.Get(0, 1), 3);
  // Original untouched.
  EXPECT_EQ(t->Get(0, 0), 10);
}

TEST(TableTest, DecodeColumnMatchesGet) {
  StatusOr<Table> t = Table::FromColumns({{7, 8, 9}});
  ASSERT_TRUE(t.ok());
  const std::vector<Value> col = t->DecodeColumn(0);
  ASSERT_EQ(col.size(), 3u);
  for (size_t i = 0; i < 3; ++i) EXPECT_EQ(col[i], t->Get(i, 0));
}

TEST(TableTest, SerializeRoundTripPreservesEverything) {
  StatusOr<Table> t = Table::FromColumns(
      {{5, -3, 9, 5}, {100, 200, 300, 400}},
      Column::Encoding::kBlockDelta, {"price", "qty"});
  ASSERT_TRUE(t.ok());

  std::string bytes;
  ByteWriter w(&bytes);
  t->AppendTo(&w);
  ByteReader r(bytes);
  StatusOr<Table> restored = Table::ReadFrom(&r);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(r.remaining(), 0u);
  ASSERT_EQ(restored->num_rows(), t->num_rows());
  ASSERT_EQ(restored->num_dims(), t->num_dims());
  for (size_t d = 0; d < t->num_dims(); ++d) {
    EXPECT_EQ(restored->name(d), t->name(d));
    EXPECT_EQ(restored->min_value(d), t->min_value(d));
    EXPECT_EQ(restored->max_value(d), t->max_value(d));
    EXPECT_EQ(restored->DecodeColumn(d), t->DecodeColumn(d));
    EXPECT_EQ(restored->column(d).encoding(), t->column(d).encoding());
  }

  // Truncations never parse.
  for (size_t len = 0; len < bytes.size(); len += 7) {
    ByteReader cut(bytes.data(), len);
    EXPECT_FALSE(Table::ReadFrom(&cut).ok()) << len;
  }
}

TEST(TableTest, MemoryUsageReflectsCompression) {
  std::vector<Value> narrow(10'000);
  for (size_t i = 0; i < narrow.size(); ++i) {
    narrow[i] = 1'000'000 + static_cast<Value>(i % 16);
  }
  StatusOr<Table> compressed =
      Table::FromColumns({narrow}, Column::Encoding::kBlockDelta);
  ASSERT_TRUE(compressed.ok());
  EXPECT_LT(compressed->MemoryUsageBytes(),
            compressed->UncompressedBytes() / 4);
}

}  // namespace
}  // namespace flood
