#ifndef FLOOD_TESTS_TEST_UTIL_H_
#define FLOOD_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.h"
#include "data/distributions.h"
#include "query/query.h"
#include "storage/table.h"

namespace flood {
namespace testing {

/// RAII path under the gtest temp dir, unique per process; removes the
/// file (and any atomic-write `.tmp` leftover) on destruction.
class TempFile {
 public:
  explicit TempFile(const std::string& name)
      : path_(::testing::TempDir() + "flood_" + std::to_string(::getpid()) +
              "_" + name) {
    std::remove(path_.c_str());
  }
  ~TempFile() {
    std::remove(path_.c_str());
    std::remove((path_ + ".tmp").c_str());
  }
  TempFile(const TempFile&) = delete;
  TempFile& operator=(const TempFile&) = delete;
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// Rows of `table` as row-major tuples (InsertBatch / oracle input).
inline std::vector<std::vector<Value>> RowsOf(const Table& table) {
  std::vector<std::vector<Value>> rows(table.num_rows());
  for (RowId r = 0; r < table.num_rows(); ++r) {
    rows[r].resize(table.num_dims());
    for (size_t d = 0; d < table.num_dims(); ++d) {
      rows[r][d] = table.Get(r, d);
    }
  }
  return rows;
}

/// Shapes of synthetic test data exercising different index stress points.
enum class DataShape {
  kUniform,
  kSkewed,      // Lognormal-heavy tails.
  kClustered,   // Gaussian mixture.
  kDuplicates,  // Tiny categorical domains.
  kCorrelated,  // dim1 = dim0 + noise.
};

inline const char* DataShapeName(DataShape s) {
  switch (s) {
    case DataShape::kUniform:
      return "Uniform";
    case DataShape::kSkewed:
      return "Skewed";
    case DataShape::kClustered:
      return "Clustered";
    case DataShape::kDuplicates:
      return "Duplicates";
    case DataShape::kCorrelated:
      return "Correlated";
  }
  return "?";
}

/// Builds an n-row, d-dim table of the requested shape.
inline Table MakeTable(DataShape shape, size_t n, size_t d, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<Value>> cols(d);
  for (size_t dim = 0; dim < d; ++dim) {
    switch (shape) {
      case DataShape::kUniform:
        cols[dim] = UniformColumn(n, 0, 1'000'000, rng);
        break;
      case DataShape::kSkewed:
        cols[dim] = LognormalColumn(n, 5.0, 1.5, 1.0, rng);
        break;
      case DataShape::kClustered:
        cols[dim] = ClusteredColumn(n, 8, 0, 1'000'000, 20'000.0, rng);
        break;
      case DataShape::kDuplicates:
        cols[dim] = ZipfColumn(n, 12, 1.1, rng);
        break;
      case DataShape::kCorrelated:
        if (dim == 0) {
          cols[dim] = UniformColumn(n, 0, 1'000'000, rng);
        } else {
          cols[dim] = OffsetColumn(cols[dim - 1], -5'000, 5'000, rng);
        }
        break;
    }
  }
  StatusOr<Table> t = Table::FromColumns(std::move(cols));
  FLOOD_CHECK(t.ok());
  return std::move(t).value();
}

/// A random conjunctive query over `table`: each dim independently gets a
/// range filter (probability ~0.5), an equality filter (~0.15), or none.
inline Query RandomQuery(const Table& table, uint64_t seed) {
  Rng rng(seed);
  Query q(table.num_dims());
  for (size_t dim = 0; dim < table.num_dims(); ++dim) {
    const double roll = rng.NextDouble();
    const Value mn = table.min_value(dim);
    const Value mx = table.max_value(dim);
    if (roll < 0.5) {
      Value a = rng.UniformInt(mn, mx);
      Value b = rng.UniformInt(mn, mx);
      if (a > b) std::swap(a, b);
      q.SetRange(dim, a, b);
    } else if (roll < 0.65) {
      const RowId row = static_cast<RowId>(
          rng.UniformInt(0, static_cast<int64_t>(table.num_rows()) - 1));
      q.SetEquals(dim, table.Get(row, dim));
    }
  }
  return q;
}

/// Brute-force oracle: COUNT and SUM(sum_dim) of matching rows.
struct OracleResult {
  uint64_t count = 0;
  int64_t sum = 0;
};

inline OracleResult BruteForce(const Table& table, const Query& q,
                               size_t sum_dim) {
  OracleResult r;
  for (RowId row = 0; row < table.num_rows(); ++row) {
    if (q.Matches(table, row)) {
      ++r.count;
      r.sum += table.Get(row, sum_dim);
    }
  }
  return r;
}

}  // namespace testing
}  // namespace flood

#endif  // FLOOD_TESTS_TEST_UTIL_H_
