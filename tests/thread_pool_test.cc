// Tests of the flood::ThreadPool subsystem: submit/wait semantics, the
// WaitGroup error path (exception-in-task), destruction draining, and the
// ParallelFor sharding helper that Database::RunBatch builds on.

#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace flood {
namespace {

TEST(ThreadPoolTest, DefaultConcurrencyIsPositive) {
  EXPECT_GE(ThreadPool::DefaultConcurrency(), 1u);
  ThreadPool pool(0);  // 0 = default concurrency.
  EXPECT_EQ(pool.num_threads(), ThreadPool::DefaultConcurrency());
}

TEST(ThreadPoolTest, SubmitAndWaitRunsEveryTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  std::atomic<int> counter{0};
  WaitGroup wg;
  for (int i = 0; i < 1000; ++i) {
    pool.Submit(wg.Wrap([&counter] { ++counter; }));
  }
  wg.Wait();
  EXPECT_EQ(counter.load(), 1000);
}

TEST(ThreadPoolTest, TasksActuallyRunOnWorkerThreads) {
  ThreadPool pool(2);
  std::atomic<bool> ran_elsewhere{false};
  const std::thread::id caller = std::this_thread::get_id();
  WaitGroup wg;
  for (int i = 0; i < 16; ++i) {
    pool.Submit(wg.Wrap([&ran_elsewhere, caller] {
      if (std::this_thread::get_id() != caller) ran_elsewhere = true;
    }));
  }
  wg.Wait();
  EXPECT_TRUE(ran_elsewhere.load());
}

TEST(ThreadPoolTest, ExceptionInTaskSurfacesAtWaitAndPoolSurvives) {
  ThreadPool pool(2);
  std::atomic<int> completed{0};
  WaitGroup wg;
  for (int i = 0; i < 8; ++i) {
    pool.Submit(wg.Wrap([&completed, i] {
      if (i == 3) throw std::runtime_error("task failure");
      ++completed;
    }));
  }
  EXPECT_THROW(wg.Wait(), std::runtime_error);
  // The other tasks still ran; the worker that caught the exception and
  // the group are both reusable afterwards.
  EXPECT_EQ(completed.load(), 7);
  pool.Submit(wg.Wrap([&completed] { ++completed; }));
  EXPECT_NO_THROW(wg.Wait());
  EXPECT_EQ(completed.load(), 8);
}

TEST(ThreadPoolTest, DestructionDrainsQueuedTasks) {
  std::atomic<int> counter{0};
  {
    // One worker + slow tasks guarantees a deep queue at destruction time.
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        ++counter;
      });
    }
  }  // ~ThreadPool joins only after the queue is empty.
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, WaitGroupIsReusableAcrossRounds) {
  ThreadPool pool(3);
  WaitGroup wg;
  std::atomic<int> counter{0};
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 20; ++i) {
      pool.Submit(wg.Wrap([&counter] { ++counter; }));
    }
    wg.Wait();
    EXPECT_EQ(counter.load(), (round + 1) * 20);
  }
}

TEST(ThreadPoolTest, ParallelForCoversTheRangeExactlyOnce) {
  ThreadPool pool(4);
  const size_t n = 1003;  // Deliberately not divisible by the shard count.
  std::vector<std::atomic<int>> hits(n);
  ParallelFor(pool, n, pool.num_threads(),
              [&hits](size_t /*shard*/, size_t begin, size_t end) {
                for (size_t i = begin; i < end; ++i) ++hits[i];
              });
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForShardsAreContiguousAndOrdered) {
  ThreadPool pool(4);
  std::vector<std::pair<size_t, size_t>> bounds(4);
  ParallelFor(pool, 10, 4, [&bounds](size_t shard, size_t begin, size_t end) {
    bounds[shard] = {begin, end};
  });
  // 10 over 4 shards: front shards take the remainder.
  EXPECT_EQ(bounds[0], (std::pair<size_t, size_t>{0, 3}));
  EXPECT_EQ(bounds[1], (std::pair<size_t, size_t>{3, 6}));
  EXPECT_EQ(bounds[2], (std::pair<size_t, size_t>{6, 8}));
  EXPECT_EQ(bounds[3], (std::pair<size_t, size_t>{8, 10}));
}

TEST(ThreadPoolTest, ParallelForHandlesEmptyAndTinyRanges) {
  ThreadPool pool(2);
  int calls = 0;
  ParallelFor(pool, 0, 4, [&calls](size_t, size_t, size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  // n < shards: one shard per element, never an empty shard.
  std::atomic<int> covered{0};
  ParallelFor(pool, 2, 8, [&covered](size_t, size_t begin, size_t end) {
    covered += static_cast<int>(end - begin);
  });
  EXPECT_EQ(covered.load(), 2);
}

}  // namespace
}  // namespace flood
