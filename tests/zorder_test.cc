#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "core/zorder_curve.h"
#include "common/rng.h"

namespace flood {
namespace {

TEST(ZOrderCurveTest, EncodeDecodeRoundTrip) {
  for (size_t d : {size_t{1}, size_t{2}, size_t{3}, size_t{6}, size_t{10}}) {
    const ZOrderCurve curve(d);
    Rng rng(d * 17);
    std::vector<uint32_t> coords(d);
    for (int trial = 0; trial < 500; ++trial) {
      for (auto& c : coords) {
        c = static_cast<uint32_t>(rng.UniformInt(0, curve.max_coord()));
      }
      const uint64_t z = curve.Encode(coords.data());
      for (size_t dim = 0; dim < d; ++dim) {
        EXPECT_EQ(curve.Decode(z, dim), coords[dim]);
      }
    }
  }
}

TEST(ZOrderCurveTest, TwoDimKnownValues) {
  const ZOrderCurve curve(2);
  // Classic Morton: (x=1, y=0) -> 0b01; (x=0, y=1) -> 0b10; (1,1) -> 0b11.
  uint32_t c10[2] = {1, 0};
  uint32_t c01[2] = {0, 1};
  uint32_t c11[2] = {1, 1};
  EXPECT_EQ(curve.Encode(c10), 0b01u);
  EXPECT_EQ(curve.Encode(c01), 0b10u);
  EXPECT_EQ(curve.Encode(c11), 0b11u);
  uint32_t c23[2] = {2, 3};  // x=10, y=11 -> interleave y1 x1 y0 x0 = 1110.
  EXPECT_EQ(curve.Encode(c23), 0b1110u);
}

TEST(ZOrderCurveTest, InBoxMatchesCoordinateCheck) {
  for (size_t d : {size_t{2}, size_t{3}, size_t{4}}) {
    const ZOrderCurve curve(d);
    Rng rng(d * 31);
    std::vector<uint32_t> lo(d);
    std::vector<uint32_t> hi(d);
    std::vector<uint32_t> p(d);
    for (int trial = 0; trial < 300; ++trial) {
      for (size_t i = 0; i < d; ++i) {
        uint32_t a = static_cast<uint32_t>(rng.UniformInt(0, 63));
        uint32_t b = static_cast<uint32_t>(rng.UniformInt(0, 63));
        if (a > b) std::swap(a, b);
        lo[i] = a;
        hi[i] = b;
        p[i] = static_cast<uint32_t>(rng.UniformInt(0, 63));
      }
      const uint64_t zmin = curve.Encode(lo.data());
      const uint64_t zmax = curve.Encode(hi.data());
      const uint64_t z = curve.Encode(p.data());
      bool expected = true;
      for (size_t i = 0; i < d; ++i) {
        expected = expected && p[i] >= lo[i] && p[i] <= hi[i];
      }
      EXPECT_EQ(curve.InBox(z, zmin, zmax), expected);
    }
  }
}

/// Brute-force BIGMIN: enumerate all lattice points of the box, find the
/// smallest code strictly greater than z.
std::optional<uint64_t> BruteNextInBox(const ZOrderCurve& curve,
                                       uint64_t z,
                                       const std::vector<uint32_t>& lo,
                                       const std::vector<uint32_t>& hi) {
  const size_t d = lo.size();
  std::vector<uint32_t> c = lo;
  std::optional<uint64_t> best;
  while (true) {
    const uint64_t code = curve.Encode(c.data());
    if (code > z && (!best.has_value() || code < *best)) best = code;
    size_t k = d;
    bool done = true;
    while (k-- > 0) {
      if (++c[k] <= hi[k]) {
        done = false;
        break;
      }
      c[k] = lo[k];
    }
    if (done) break;
  }
  return best;
}

class BigMinTest : public ::testing::TestWithParam<size_t> {};

TEST_P(BigMinTest, MatchesBruteForce) {
  const size_t d = GetParam();
  const ZOrderCurve curve(d);
  Rng rng(d * 101);
  const uint32_t max_coord = d <= 2 ? 15 : 7;  // Keep brute force small.
  std::vector<uint32_t> lo(d);
  std::vector<uint32_t> hi(d);
  std::vector<uint32_t> p(d);
  for (int trial = 0; trial < 400; ++trial) {
    for (size_t i = 0; i < d; ++i) {
      uint32_t a = static_cast<uint32_t>(rng.UniformInt(0, max_coord));
      uint32_t b = static_cast<uint32_t>(rng.UniformInt(0, max_coord));
      if (a > b) std::swap(a, b);
      lo[i] = a;
      hi[i] = b;
      p[i] = static_cast<uint32_t>(rng.UniformInt(0, max_coord));
    }
    const uint64_t zmin = curve.Encode(lo.data());
    const uint64_t zmax = curve.Encode(hi.data());
    const uint64_t z = curve.Encode(p.data());
    const auto got = curve.NextInBox(z, zmin, zmax);
    const auto expected = BruteNextInBox(curve, z, lo, hi);
    EXPECT_EQ(got.has_value(), expected.has_value())
        << "d=" << d << " trial=" << trial;
    if (got.has_value() && expected.has_value()) {
      EXPECT_EQ(*got, *expected) << "d=" << d << " trial=" << trial;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, BigMinTest,
                         ::testing::Values(size_t{2}, size_t{3}, size_t{4},
                                           size_t{5}),
                         [](const auto& info) {
                           return "d" + std::to_string(info.param);
                         });

TEST(ZOrderMapperTest, CoordinatesMonotoneInValue) {
  StatusOr<Table> t = Table::FromColumns(
      {{-100, 0, 50, 999'999}, {3, 7, 7, 9}});
  ASSERT_TRUE(t.ok());
  const ZOrderMapper mapper(*t, {0, 1});
  uint32_t prev = 0;
  for (Value v = -100; v <= 1'000'000; v += 10'000) {
    const uint32_t c = mapper.ToCoord(0, v);
    EXPECT_GE(c, prev);
    prev = c;
  }
  // Out-of-range values clamp.
  EXPECT_EQ(mapper.ToCoord(0, kValueMin), 0u);
  EXPECT_EQ(mapper.ToCoord(0, kValueMax),
            mapper.ToCoord(0, t->max_value(0)));
}

}  // namespace
}  // namespace flood
