#!/usr/bin/env python3
"""Bench-regression gate for CI.

Compares a freshly-measured google-benchmark JSON report against a
committed baseline (bench/baselines/BENCH_*.json) and fails when any
benchmark's throughput metric regressed by more than --max-regression
(default 25%).

Metric selection per benchmark, in order:
  1. the `rows_per_s` counter (bench_scan_kernel) — higher is better;
  2. the `qps` counter (bench_throughput) — higher is better;
  3. `real_time` — lower is better.

Benchmarks present on only one side are reported but do not fail the gate
(bench matrices legitimately grow/shrink with hardware, e.g. the thread
sweep); pass --require-all to make them fatal.

Typical use:

  # CI gate:
  python3 tools/check_bench_regression.py \
      --baseline bench/baselines/BENCH_scan_kernel.json \
      --current bench_scan_kernel.json

  # Refresh the committed baseline after an intentional perf change or a
  # runner-hardware change (then commit the result):
  python3 tools/check_bench_regression.py \
      --baseline bench/baselines/BENCH_scan_kernel.json \
      --current bench_scan_kernel.json --update
"""

import argparse
import json
import os
import shutil
import sys


def load_report(path, role):
    """Loads a google-benchmark JSON report, failing with an actionable
    message (not a stack trace) on unreadable or malformed files."""
    try:
        with open(path) as f:
            return json.load(f)
    except OSError as e:
        print(f"FAIL: cannot read {role} {path}: {e}")
        return None
    except json.JSONDecodeError as e:
        print(f"FAIL: {role} {path} is not valid JSON ({e}); if this is "
              "the committed baseline, regenerate it with the bench's "
              "--benchmark_out JSON and --update")
        return None


def load_context(report):
    return report.get("context", {})


def check_context_mismatch(baseline, current):
    """A baseline measured on different hardware (or a different build
    flavor) makes absolute-throughput ratios meaningless: a slow-host
    baseline lets real regressions sail through, a fast-host baseline
    fails good code. Returns the mismatched keys so the caller can fail
    the gate (--require-same-context, what CI uses — a dead gate that
    can never fire is worse than a red one demanding a baseline
    refresh)."""
    base_ctx = load_context(baseline)
    cur_ctx = load_context(current)
    mismatched = []
    # mhz_per_cpu rotates with the runner fleet's hardware generation, so
    # it only warns; the structural keys are fatal under
    # --require-same-context.
    for key, fatal in (("num_cpus", True), ("library_build_type", True),
                       ("mhz_per_cpu", False)):
        b, c = base_ctx.get(key), cur_ctx.get(key)
        if b is not None and c is not None and b != c:
            if fatal:
                mismatched.append(key)
            print(f"WARNING: baseline/current context mismatch on "
                  f"'{key}': {b} vs {c} — absolute throughput is not "
                  "comparable; refresh the baseline with --update from a "
                  "run on the gating environment")
    return mismatched


def load_benchmarks(report):
    """Returns {name: (metric_name, value, higher_is_better)}."""
    out = {}
    for bench in report.get("benchmarks", []):
        name = bench.get("name")
        if name is None or bench.get("run_type") == "aggregate":
            continue
        if "rows_per_s" in bench:
            out[name] = ("rows_per_s", float(bench["rows_per_s"]), True)
        elif "qps" in bench:
            out[name] = ("qps", float(bench["qps"]), True)
        elif "real_time" in bench:
            out[name] = ("real_time", float(bench["real_time"]), False)
    return out


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True,
                        help="committed baseline JSON")
    parser.add_argument("--current", required=True,
                        help="freshly measured JSON")
    parser.add_argument("--max-regression", type=float, default=0.25,
                        help="fail when metric worsens by more than this "
                             "fraction (default 0.25)")
    parser.add_argument("--require-all", action="store_true",
                        help="fail when benchmark sets differ")
    parser.add_argument("--require-same-context", action="store_true",
                        help="fail when the baseline was measured on "
                             "different hardware or build flavor (instead "
                             "of comparing meaningless ratios)")
    parser.add_argument("--update", action="store_true",
                        help="copy --current over --baseline and exit")
    args = parser.parse_args()

    if args.update:
        # Validate before copying: a typo'd path or malformed JSON must
        # not become (or stay) the committed baseline.
        report = load_report(args.current, "current report")
        if report is None:
            return 1
        if not load_benchmarks(report):
            print(f"FAIL: {args.current} has no benchmark section; "
                  "refusing to install it as a baseline")
            return 1
        shutil.copyfile(args.current, args.baseline)
        print(f"baseline updated: {args.baseline} <- {args.current}")
        return 0

    # A brand-new bench has no committed baseline yet; the gate passes
    # vacuously with instructions instead of failing (or stack-tracing) —
    # new benches shouldn't go red before their first baseline lands.
    if not os.path.exists(args.baseline):
        print(f"SKIP: baseline {args.baseline} does not exist yet — "
              "nothing to gate against. To arm this gate, run the bench "
              "on the gating environment and commit its JSON there "
              f"(check_bench_regression.py --current <fresh.json> "
              f"--baseline {args.baseline} --update).")
        return 0

    baseline_report = load_report(args.baseline, "baseline")
    current_report = load_report(args.current, "current report")
    if baseline_report is None or current_report is None:
        return 1

    mismatched = check_context_mismatch(baseline_report, current_report)
    if mismatched and args.require_same_context:
        print(f"FAIL: benchmark context mismatch ({', '.join(mismatched)}) "
              "— the committed baseline does not describe this "
              "environment. Refresh it: rerun the bench here, then "
              "check_bench_regression.py --update (CI uploads the fresh "
              "JSON as an artifact for exactly this).")
        return 1
    baseline = load_benchmarks(baseline_report)
    current = load_benchmarks(current_report)

    if not baseline:
        # Same new-bench situation as a missing file, only someone
        # committed a stub: skip with instructions, don't stack-trace or
        # fail a bench that has nothing to be compared against.
        print(f"SKIP: baseline {args.baseline} has no benchmark section — "
              "refresh it from a real run with --update and commit it.")
        return 0
    if not current:
        print(f"FAIL: current report {args.current} has no benchmark "
              "section — the bench produced no measurements")
        return 1

    missing = sorted(set(baseline) - set(current))
    added = sorted(set(current) - set(baseline))
    common = sorted(set(baseline) & set(current))
    if not common:
        print("FAIL: no benchmarks in common between baseline and current")
        return 1

    failures = []
    width = max(len(n) for n in common)
    print(f"{'benchmark':<{width}}  {'metric':>10}  {'baseline':>12}  "
          f"{'current':>12}  {'ratio':>7}")
    for name in common:
        metric, base_value, higher_better = baseline[name]
        cur_metric, cur_value, _ = current[name]
        if cur_metric != metric or base_value <= 0 or cur_value <= 0:
            print(f"{name:<{width}}  (skipped: metric mismatch or "
                  "non-positive value)")
            continue
        # Normalize so ratio > 1 always means "got better".
        ratio = (cur_value / base_value) if higher_better \
            else (base_value / cur_value)
        flag = ""
        if ratio < 1.0 - args.max_regression:
            flag = "  << REGRESSION"
            failures.append((name, metric, base_value, cur_value, ratio))
        print(f"{name:<{width}}  {metric:>10}  {base_value:>12.4g}  "
              f"{cur_value:>12.4g}  {ratio:>6.2f}x{flag}")

    for name in missing:
        print(f"WARNING: in baseline only: {name}")
    for name in added:
        print(f"NOTE: new benchmark (no baseline): {name}")

    if args.require_all and missing:
        print(f"FAIL: {len(missing)} baseline benchmark(s) missing from "
              "the current run")
        return 1
    if failures:
        print(f"\nFAIL: {len(failures)} benchmark(s) regressed more than "
              f"{args.max_regression:.0%}:")
        for name, metric, base_value, cur_value, ratio in failures:
            print(f"  {name}: {metric} {base_value:.4g} -> {cur_value:.4g} "
                  f"({ratio:.2f}x)")
        print("If intentional (or the runner hardware changed), refresh "
              "with --update and commit the new baseline.")
        return 1
    print(f"\nOK: {len(common)} benchmark(s) within "
          f"{args.max_regression:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
