#!/usr/bin/env python3
"""Check relative markdown links (and #anchors) across the repo's *.md files.

Walks every tracked-looking markdown file (skipping build trees and
.git), extracts inline links, and fails if a relative link points at a
file that does not exist or at a heading anchor that no heading in the
target file produces. External links (http/https/mailto) are ignored —
CI should not depend on the network.

Usage: python3 tools/check_md_links.py [repo_root]
Exit:  0 all links resolve, 1 otherwise (each break printed as
       file:line: message).
"""

import re
import sys
from pathlib import Path

SKIP_DIRS = {".git", "build", "third_party", "_deps"}
SCHEME_RE = re.compile(r"^[a-zA-Z][a-zA-Z0-9+.-]*:")
# Inline link: [text](target) with an optional "title". Images share the
# syntax (the leading ! is outside the brackets), so they are covered.
LINK_RE = re.compile(r"\[[^\]]*\]\(\s*<?([^)<>\s]+)>?(?:\s+\"[^\"]*\")?\s*\)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.+?)\s*#*\s*$")
FENCE_RE = re.compile(r"^\s*(```|~~~)")


def strip_fenced_blocks(lines):
    """Yield (lineno, line) for lines outside ``` / ~~~ fences."""
    fence = None
    for i, line in enumerate(lines, start=1):
        m = FENCE_RE.match(line)
        if m:
            if fence is None:
                fence = m.group(1)
            elif m.group(1) == fence:
                fence = None
            continue
        if fence is None:
            yield i, line


def github_slug(heading):
    """Approximate GitHub's heading -> anchor id transformation."""
    # Drop inline-code/emphasis markers and collapse heading links to
    # their text before slugifying.
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", heading)
    text = re.sub(r"[`*]", "", text).strip().lower()
    out = []
    for ch in text:
        if ch.isalnum() or ch in "_-":
            out.append(ch)
        elif ch == " ":
            out.append("-")
        # every other character is dropped
    return "".join(out)


def anchors_of(path, cache):
    if path not in cache:
        slugs = set()
        counts = {}
        lines = path.read_text(encoding="utf-8").splitlines()
        for _, line in strip_fenced_blocks(lines):
            m = HEADING_RE.match(line)
            if not m:
                continue
            slug = github_slug(m.group(2))
            n = counts.get(slug, 0)
            counts[slug] = n + 1
            slugs.add(slug if n == 0 else f"{slug}-{n}")
        cache[path] = slugs
    return cache[path]


def check_file(md, root, anchor_cache):
    errors = []
    lines = md.read_text(encoding="utf-8").splitlines()
    for lineno, line in strip_fenced_blocks(lines):
        # Inline code spans can contain [x](y)-shaped text that is not
        # a link (array indexing followed by a call, say).
        line = re.sub(r"`[^`]*`", "", line)
        for m in LINK_RE.finditer(line):
            target = m.group(1)
            if SCHEME_RE.match(target):
                continue  # external: http(s), mailto, ...
            path_part, _, anchor = target.partition("#")
            dest = md if not path_part else (md.parent / path_part).resolve()
            if not dest.exists():
                errors.append((md, lineno, f"broken link: {target}"))
                continue
            if not root in dest.parents and dest != root:
                errors.append((md, lineno, f"link escapes repo: {target}"))
                continue
            if anchor:
                if dest.is_dir() or dest.suffix.lower() != ".md":
                    errors.append(
                        (md, lineno, f"anchor on non-markdown target: {target}")
                    )
                elif anchor.lower() not in anchors_of(dest, anchor_cache):
                    errors.append((md, lineno, f"missing anchor: {target}"))
    return errors


def main():
    root = Path(sys.argv[1] if len(sys.argv) > 1 else ".").resolve()
    md_files = sorted(
        p
        for p in root.rglob("*.md")
        if not (set(p.relative_to(root).parts[:-1]) & SKIP_DIRS)
    )
    if not md_files:
        print(f"no markdown files found under {root}", file=sys.stderr)
        return 1
    anchor_cache = {}
    errors = []
    for md in md_files:
        errors.extend(check_file(md, root, anchor_cache))
    for md, lineno, msg in errors:
        print(f"{md.relative_to(root)}:{lineno}: {msg}")
    print(
        f"checked {len(md_files)} markdown files, "
        f"{len(errors)} broken link(s)"
    )
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
