#!/usr/bin/env python3
"""Metrics-overhead guard for CI.

Compares bench_throughput QPS between a -DFLOOD_METRICS=OFF build and the
default (metrics-on) build and fails when recording costs more than
--max-regression-pct overall. Accepts several JSON reports per side (the
CI job runs best-of-3): per benchmark the *best* QPS across runs is used,
which suppresses one-off runner noise without hiding a systematic cost.

The verdict is the geometric mean of per-benchmark on/off ratios — a
single noisy cell can't fail (or pass) the gate by itself.

  python3 tools/check_metrics_overhead.py \
      --off off_1.json off_2.json --on on_1.json on_2.json \
      --max-regression-pct 3
"""

import argparse
import json
import math
import sys


def best_qps(paths):
    """{benchmark name: best qps across all reports}."""
    best = {}
    for path in paths:
        with open(path) as f:
            report = json.load(f)
        for bench in report.get("benchmarks", []):
            name = bench.get("name")
            if name is None or bench.get("run_type") == "aggregate":
                continue
            if "qps" not in bench:
                continue
            qps = float(bench["qps"])
            if qps > best.get(name, 0.0):
                best[name] = qps
    return best


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--off", nargs="+", required=True,
                        help="reports from the -DFLOOD_METRICS=OFF build")
    parser.add_argument("--on", nargs="+", required=True,
                        help="reports from the metrics-on build")
    parser.add_argument("--max-regression-pct", type=float, default=3.0)
    args = parser.parse_args()

    off = best_qps(args.off)
    on = best_qps(args.on)
    common = sorted(set(off) & set(on))
    if not common:
        print("FAIL: no qps benchmarks in common between the two builds")
        return 1

    log_ratio_sum = 0.0
    for name in common:
        ratio = on[name] / off[name]
        log_ratio_sum += math.log(ratio)
        print(f"{name}: off={off[name]:.0f} on={on[name]:.0f} "
              f"({(ratio - 1) * 100:+.2f}%)")
    geomean = math.exp(log_ratio_sum / len(common))
    regression_pct = (1 - geomean) * 100
    print(f"geometric mean on/off: {geomean:.4f} "
          f"({-regression_pct:+.2f}% vs metrics-off)")
    if regression_pct > args.max_regression_pct:
        print(f"FAIL: metrics recording costs {regression_pct:.2f}% QPS "
              f"(budget {args.max_regression_pct}%)")
        return 1
    print("OK: within budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
