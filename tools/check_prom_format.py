#!/usr/bin/env python3
"""Validate Prometheus text exposition (v0.0.4) read from stdin or a file.

Used by the CI metrics smoke job to check what flood_serve's /metrics
endpoint actually emits (tests cover the renderer; this covers the wire).
Checks, strictly:

  - every line is a comment, blank, or a parseable `name{labels} value`
    sample with a finite float value
  - `# TYPE` appears at most once per metric family, before any of the
    family's samples
  - sample names belong to a declared family (exact, or `_bucket`,
    `_sum`, `_count` suffixes for histograms/summaries)
  - histogram bucket series are cumulative in `le` order, end with
    `le="+Inf"`, and the +Inf count equals the family's `_count` sample
  - metric names match [a-zA-Z_:][a-zA-Z0-9_:]*

Exit 0 when valid; exit 1 with one line per violation otherwise.
Stdlib only.
"""

import math
import re
import sys

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>[^ ]+)"
    r"(?: (?P<timestamp>-?\d+))?$"
)
LABEL_RE = re.compile(r'^([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"$')
VALID_TYPES = {"counter", "gauge", "histogram", "summary", "untyped"}


def parse_value(text):
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    if text == "NaN":
        return math.nan
    return float(text)  # raises ValueError on garbage


def family_of(name, types):
    """Maps a sample name onto its declared family, if any."""
    if name in types:
        return name
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            base = name[: -len(suffix)]
            if types.get(base) in ("histogram", "summary"):
                return base
    return None


def check(lines):
    errors = []
    types = {}  # family -> declared type
    seen_samples = set()  # families that have emitted a sample
    buckets = {}  # family -> list of (le, cumulative count)
    counts = {}  # family -> value of the `_count` sample

    for lineno, raw in enumerate(lines, start=1):
        line = raw.rstrip("\n")

        def err(message):
            errors.append("line %d: %s (%r)" % (lineno, message, line[:120]))

        if line.startswith("# TYPE "):
            parts = line[len("# TYPE ") :].split(" ")
            if len(parts) != 2:
                err("malformed TYPE line")
                continue
            family, kind = parts
            if not NAME_RE.match(family):
                err("bad family name in TYPE")
            if kind not in VALID_TYPES:
                err("unknown type %r" % kind)
            if family in types:
                err("duplicate TYPE for family %r" % family)
            if family in seen_samples:
                err("TYPE for %r after its samples" % family)
            types[family] = kind
            continue
        if line.startswith("#") or not line.strip():
            continue  # HELP, other comments, blank lines

        m = SAMPLE_RE.match(line)
        if not m:
            err("unparseable sample line")
            continue
        name = m.group("name")
        try:
            value = parse_value(m.group("value"))
        except ValueError:
            err("non-numeric sample value")
            continue

        labels = {}
        if m.group("labels") is not None:
            for part in filter(None, m.group("labels").split(",")):
                lm = LABEL_RE.match(part)
                if not lm:
                    err("malformed label %r" % part)
                    break
                labels[lm.group(1)] = lm.group(2)

        family = family_of(name, types)
        if family is None:
            err("sample %r has no preceding TYPE declaration" % name)
            continue
        seen_samples.add(family)

        if name == family + "_bucket" and types.get(family) == "histogram":
            if "le" not in labels:
                err("histogram bucket without le label")
                continue
            try:
                le = parse_value(labels["le"])
            except ValueError:
                err("non-numeric le %r" % labels["le"])
                continue
            series = buckets.setdefault(family, [])
            if series:
                prev_le, prev_count = series[-1]
                if not le > prev_le:
                    err("bucket le not increasing (%s after %s)"
                        % (labels["le"], prev_le))
                if value < prev_count:
                    err("bucket counts not cumulative")
            series.append((le, value))
        elif name == family + "_count":
            counts[family] = value

    for family, kind in types.items():
        if kind != "histogram" or family not in seen_samples:
            continue
        series = buckets.get(family, [])
        if not series:
            errors.append("histogram %r has no bucket series" % family)
            continue
        last_le, last_count = series[-1]
        if last_le != math.inf:
            errors.append("histogram %r does not end at le=+Inf" % family)
        if family in counts and counts[family] != last_count:
            errors.append(
                "histogram %r: +Inf bucket %g != _count %g"
                % (family, last_count, counts[family])
            )

    return errors


def main():
    if len(sys.argv) > 2:
        print("usage: check_prom_format.py [FILE]", file=sys.stderr)
        return 2
    if len(sys.argv) == 2:
        with open(sys.argv[1], "r", encoding="utf-8") as f:
            lines = f.readlines()
    else:
        lines = sys.stdin.readlines()

    errors = check(lines)
    for e in errors:
        print(e, file=sys.stderr)
    if errors:
        return 1
    print("ok: %d lines" % len(lines))
    return 0


if __name__ == "__main__":
    sys.exit(main())
