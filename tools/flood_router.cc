// flood_router: sharded scatter-gather serving binary — a
// flood::serve::Server in front of a flood::serve::Router, speaking the
// SAME binary wire protocol as flood_serve (clients cannot tell a router
// from a single server; see "Sharded serving" in src/serve/README.md).
//
// Two deployment shapes:
//
//   In-process shards (demo / single-box): --shards N partitions a
//   synthetic table by sort-dim quantiles into N independent Database
//   instances (each with its own learned layout) and routes across them.
//
//     $ flood_router --uds /tmp/router.sock --shards 4 --rows 400000
//
//   Remote shards (multi-process): one --backend ADDRESS per shard (in
//   shard order) plus --bounds with the N-1 range boundaries; each
//   backend is an independent flood_serve process.
//
//     $ flood_serve --uds /tmp/s0.sock --rows 100000 &
//     $ flood_serve --uds /tmp/s1.sock --rows 100000 &
//     $ flood_router --uds /tmp/router.sock \
//         --backend unix:/tmp/s0.sock --backend unix:/tmp/s1.sock \
//         --bounds 500000
//
// SIGTERM/SIGINT drain exactly like flood_serve: stop accepting, shed new
// requests with kShuttingDown, finish in-flight scatters, flush, exit 0.

#include <signal.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "api/sharded_database.h"
#include "data/datasets.h"
#include "serve/client.h"
#include "serve/metrics_summary.h"
#include "serve/router.h"
#include "serve/server.h"

namespace {

flood::serve::Server* g_server = nullptr;

void HandleSignal(int /*signo*/) {
  if (g_server != nullptr) g_server->Shutdown();  // Async-signal-safe.
}

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [listener flags] [shard flags] [tuning flags]\n"
      "       %s --check ADDRESS\n"
      "\n"
      "Sharded scatter-gather front end for the flood wire protocol: the\n"
      "same protocol as flood_serve, served by a router that partitions\n"
      "the key space of one dimension across N shard backends and only\n"
      "queries the shards a filter can match.\n"
      "\n"
      "Listener flags (at least one required):\n"
      "  --uds PATH            listen on a Unix-domain socket\n"
      "  --tcp PORT            listen on TCP (0 = pick a free port; the\n"
      "                        resolved port is printed on stdout)\n"
      "  --host IPV4           TCP bind address (default 127.0.0.1)\n"
      "  --metrics-addr H:P    Prometheus scrape endpoint (GET /metrics,\n"
      "                        port 0 = pick a free port). Off by\n"
      "                        default. See docs/metrics.md.\n"
      "\n"
      "Shard flags — in-process mode (synthetic data, single box):\n"
      "  --shards N            partition into N local Database shards\n"
      "                        (default 2)\n"
      "  --rows N --dims D     synthetic uniform table size (defaults\n"
      "                        200000 x 4)\n"
      "  --index NAME          per-shard index (default flood)\n"
      "  --sort-dim D          dimension to partition on (default 0)\n"
      "\n"
      "Shard flags — remote mode (one flood_serve process per shard):\n"
      "  --backend ADDRESS     one per shard, in shard order; ADDRESS is\n"
      "                        unix:<path> or <ipv4>:<port>\n"
      "  --bounds V1,V2,...    the N-1 range boundaries: shard i+1 owns\n"
      "                        values >= Vi (required with >1 backend)\n"
      "  --sort-dim D          dimension the bounds partition (default 0)\n"
      "  --backend-timeout-ms MS   per-operation client deadlines toward\n"
      "                        the backends (default 10000)\n"
      "\n"
      "Tuning flags:\n"
      "  --threads N           per-shard RunBatch threads, in-process mode\n"
      "                        (default: hardware concurrency)\n"
      "  --max-inflight N      admission control: max in-flight batch\n"
      "                        groups before shedding kOverloaded\n"
      "                        (default 64)\n"
      "  --idle-timeout-ms MS  close idle connections (default 60000)\n"
      "\n"
      "--check probes a running router (or flood_serve — same protocol)\n"
      "via kHealth with bounded deadlines and prints a one-screen metrics\n"
      "summary from its kMetrics snapshot; exit 0 iff ready. A router is\n"
      "ready iff every shard backend is ready.\n",
      argv0, argv0);
}

/// `flood_router --check ADDRESS`: exit 0 when ready, 1 when reachable
/// but draining/not-ready/poisoned, 2 when unreachable.
int CheckHealth(const std::string& address) {
  flood::serve::ClientOptions copts;
  copts.connect_timeout_ms = 2'000;
  copts.send_timeout_ms = 2'000;
  copts.recv_timeout_ms = 2'000;
  copts.retry.max_attempts = 3;
  copts.retry.initial_backoff_ms = 50;
  auto client = flood::serve::Client::Connect(address, copts);
  if (!client.ok()) {
    std::fprintf(stderr, "connect: %s\n", client.status().ToString().c_str());
    return 2;
  }
  auto health = client->Health();
  if (!health.ok()) {
    std::fprintf(stderr, "health: %s\n", health.status().ToString().c_str());
    return 2;
  }
  std::printf(
      "ready=%d draining=%d persist_poisoned=%d queue_depth=%llu "
      "connections=%llu\n",
      health->ready ? 1 : 0, health->draining ? 1 : 0,
      health->persist_poisoned ? 1 : 0,
      static_cast<unsigned long long>(health->queue_depth),
      static_cast<unsigned long long>(health->connections_active));
  auto metrics = client->Metrics();
  if (metrics.ok()) {
    std::fputs(flood::serve::FormatMetricsSummary(*metrics).c_str(), stdout);
  } else {
    std::fprintf(stderr, "metrics: %s\n",
                 metrics.status().ToString().c_str());
  }
  return (health->ready && !health->persist_poisoned) ? 0 : 1;
}

bool ParseBounds(const std::string& spec, std::vector<flood::Value>* out) {
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string token = spec.substr(pos, comma - pos);
    if (token.empty()) return false;
    char* end = nullptr;
    const long long v = std::strtoll(token.c_str(), &end, 10);
    if (end == nullptr || *end != '\0') return false;
    out->push_back(static_cast<flood::Value>(v));
    pos = comma + 1;
  }
  return !out->empty();
}

}  // namespace

int main(int argc, char** argv) {
  std::string uds_path;
  bool listen_tcp = false;
  std::string host = "127.0.0.1";
  long tcp_port = 0;
  long shards = 2;
  long rows = 200'000;
  long dims = 4;
  std::string index_name = "flood";
  long sort_dim = 0;
  std::vector<std::string> backends;
  std::vector<flood::Value> bounds;
  long backend_timeout_ms = 10'000;
  long threads = 0;  // 0 = hardware concurrency.
  long max_inflight = 64;
  long idle_timeout_ms = 60'000;
  std::string metrics_addr;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--check") {
      return CheckHealth(next());
    } else if (arg == "--uds") {
      uds_path = next();
    } else if (arg == "--tcp") {
      listen_tcp = true;
      tcp_port = std::atol(next());
    } else if (arg == "--host") {
      host = next();
    } else if (arg == "--metrics-addr") {
      metrics_addr = next();
    } else if (arg == "--shards") {
      shards = std::atol(next());
    } else if (arg == "--rows") {
      rows = std::atol(next());
    } else if (arg == "--dims") {
      dims = std::atol(next());
    } else if (arg == "--index") {
      index_name = next();
    } else if (arg == "--sort-dim") {
      sort_dim = std::atol(next());
    } else if (arg == "--backend") {
      backends.push_back(next());
    } else if (arg == "--bounds") {
      if (!ParseBounds(next(), &bounds)) {
        std::fprintf(stderr, "bad --bounds (want V1,V2,... integers)\n");
        return 2;
      }
    } else if (arg == "--backend-timeout-ms") {
      backend_timeout_ms = std::atol(next());
    } else if (arg == "--threads") {
      threads = std::atol(next());
    } else if (arg == "--max-inflight") {
      max_inflight = std::atol(next());
    } else if (arg == "--idle-timeout-ms") {
      idle_timeout_ms = std::atol(next());
    } else if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      Usage(argv[0]);
      return 2;
    }
  }
  if (uds_path.empty() && !listen_tcp) {
    Usage(argv[0]);
    return 2;
  }
  if (tcp_port < 0 || tcp_port > 65535) {
    std::fprintf(stderr, "bad --tcp port %ld\n", tcp_port);
    return 2;
  }

  // The router (and, in-process mode, the sharded database) must outlive
  // the server; both live to the end of main.
  std::unique_ptr<flood::ShardedDatabase> sharded;
  std::unique_ptr<flood::serve::Router> router;

  if (!backends.empty()) {
    // Remote mode: one wire backend per --backend, ranges from --bounds.
    if (bounds.size() + 1 != backends.size()) {
      std::fprintf(stderr,
                   "%zu backends need exactly %zu --bounds values (got "
                   "%zu)\n",
                   backends.size(), backends.size() - 1, bounds.size());
      return 2;
    }
    auto map = flood::ShardMap::FromBounds(static_cast<size_t>(sort_dim),
                                           std::move(bounds));
    if (!map.ok()) {
      std::fprintf(stderr, "bounds: %s\n", map.status().ToString().c_str());
      return 2;
    }
    flood::serve::ClientOptions copts;
    copts.connect_timeout_ms = backend_timeout_ms;
    copts.send_timeout_ms = backend_timeout_ms;
    copts.recv_timeout_ms = backend_timeout_ms;
    std::vector<std::unique_ptr<flood::serve::BatchEngine>> engines;
    engines.reserve(backends.size());
    for (const std::string& address : backends) {
      engines.push_back(flood::serve::MakeRemoteBackend(address, copts));
    }
    router = std::make_unique<flood::serve::Router>(std::move(*map),
                                                    std::move(engines));
    std::fprintf(stderr, "routing to %zu remote shards: %s\n",
                 backends.size(), router->shard_map().ToString().c_str());
  } else {
    // In-process mode: partition a synthetic table into local shards.
    if (shards < 1) {
      std::fprintf(stderr, "bad --shards %ld\n", shards);
      return 2;
    }
    std::fprintf(stderr,
                 "building synthetic table: %ld rows x %ld dims, %ld "
                 "shards on dim %ld\n",
                 rows, dims, shards, sort_dim);
    const flood::BenchDataset ds = flood::MakeUniformDataset(
        static_cast<size_t>(rows), static_cast<size_t>(dims), 42);
    flood::ShardedDatabaseOptions opts;
    opts.num_shards = static_cast<size_t>(shards);
    opts.sort_dim = static_cast<size_t>(sort_dim);
    opts.shard_options.index_name = index_name;
    opts.shard_options.training_workload =
        flood::MakeWorkload(ds, flood::WorkloadKind::kOlapSkewed, 64, 43);
    if (threads > 0) {
      opts.shard_options.num_threads = static_cast<size_t>(threads);
    } else {
      opts.shard_options.num_threads =
          flood::ThreadPool::DefaultConcurrency();
    }
    auto db = flood::ShardedDatabase::Open(ds.table, std::move(opts));
    if (!db.ok()) {
      std::fprintf(stderr, "open: %s\n", db.status().ToString().c_str());
      return 1;
    }
    sharded = std::make_unique<flood::ShardedDatabase>(std::move(*db));
    router = flood::serve::Router::Over(sharded.get());
    std::fprintf(stderr, "sharded %zu rows: %s\n", sharded->num_rows(),
                 sharded->shard_map().ToString().c_str());
  }

  flood::serve::ServerOptions sopts;
  sopts.uds_path = uds_path;
  sopts.listen_tcp = listen_tcp;
  sopts.tcp_host = host;
  sopts.tcp_port = static_cast<uint16_t>(tcp_port);
  sopts.max_inflight_batches = static_cast<size_t>(max_inflight);
  sopts.idle_timeout_ms = idle_timeout_ms;
  sopts.metrics_addr = metrics_addr;

  flood::StatusOr<std::unique_ptr<flood::serve::Server>> server =
      flood::serve::Server::Create(router.get(), std::move(sopts));
  if (!server.ok()) {
    std::fprintf(stderr, "serve: %s\n", server.status().ToString().c_str());
    return 1;
  }
  g_server = server->get();

  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = HandleSignal;
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);

  // Readiness lines on stdout (flushed) so scripts can wait for them.
  if (!uds_path.empty()) {
    std::printf("listening uds %s\n", uds_path.c_str());
  }
  if (listen_tcp) {
    std::printf("listening tcp %s:%u\n", host.c_str(), (*server)->tcp_port());
  }
  if (!metrics_addr.empty()) {
    std::printf("metrics http port %u\n", (*server)->metrics_port());
  }
  std::printf("routing across %zu shards\n", router->num_shards());
  std::fflush(stdout);

  const flood::Status ran = (*server)->Run();
  if (!ran.ok()) {
    std::fprintf(stderr, "serve loop: %s\n", ran.ToString().c_str());
    g_server = nullptr;
    return 1;
  }

  const flood::serve::RouterCounters rc = router->counters();
  const flood::serve::ServerCounters sc = (*server)->counters();
  std::printf(
      "drained: %llu conns, %llu batches routed, %llu subqueries sent, "
      "%llu pruned, %llu shard errors, %llu shed\n",
      static_cast<unsigned long long>(sc.connections_accepted),
      static_cast<unsigned long long>(rc.batches_routed),
      static_cast<unsigned long long>(rc.subqueries_sent),
      static_cast<unsigned long long>(rc.subqueries_pruned),
      static_cast<unsigned long long>(rc.shard_errors),
      static_cast<unsigned long long>(sc.requests_shed));
  g_server = nullptr;
  return 0;
}
