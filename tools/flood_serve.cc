// flood_serve: stand-alone serving binary — a flood::serve::Server in
// front of one flood::Database, speaking the binary wire protocol
// (src/serve/README.md) over a Unix-domain socket and/or TCP.
//
// The database is opened either from a PR 5 snapshot (--snapshot PATH,
// the production path: fast learned-layout restore + WAL replay) or over
// a synthetic uniform table (--rows/--dims, for smoke tests and demos).
//
// SIGTERM/SIGINT trigger a clean drain: stop accepting, shed new request
// frames with kShuttingDown, finish every in-flight batch, flush every
// response, exit 0. Server::Shutdown() is async-signal-safe (one write
// to an eventfd), so the handler below is legal.
//
//   $ flood_serve --uds /tmp/flood.sock --rows 200000 --dims 4
//   $ flood_serve --tcp 0 --snapshot /var/lib/flood/db.snap

#include <signal.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "api/database.h"
#include "data/datasets.h"
#include "serve/client.h"
#include "serve/metrics_summary.h"
#include "serve/server.h"

namespace {

flood::serve::Server* g_server = nullptr;

void HandleSignal(int /*signo*/) {
  if (g_server != nullptr) g_server->Shutdown();  // Async-signal-safe.
}

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [listener flags] [data flags] [tuning flags]\n"
      "       %s --check ADDRESS\n"
      "\n"
      "Single-node serving binary for the flood wire protocol: one epoll\n"
      "event loop in front of one flood::Database. For a sharded tier\n"
      "over several of these, see flood_router (same protocol).\n"
      "\n"
      "Listener flags (at least one required):\n"
      "  --uds PATH            listen on a Unix-domain socket\n"
      "  --tcp PORT            listen on TCP (0 = pick a free port; the\n"
      "                        resolved port is printed on stdout)\n"
      "  --host IPV4           TCP bind address (default 127.0.0.1)\n"
      "  --metrics-addr H:P    Prometheus scrape endpoint (GET /metrics,\n"
      "                        text exposition v0.0.4; port 0 = pick a\n"
      "                        free port, printed on stdout). Off by\n"
      "                        default. See docs/metrics.md.\n"
      "\n"
      "Data flags (pick one source):\n"
      "  --snapshot PATH       open a PR 5 snapshot: fast learned-layout\n"
      "                        restore + WAL replay (production path)\n"
      "  --rows N --dims D     synthetic uniform table (defaults\n"
      "                        200000 x 4, for smoke tests and demos)\n"
      "  --index NAME          index registry key (default flood;\n"
      "                        kdtree, rtree, grid_file, zorder, ...)\n"
      "\n"
      "Tuning flags:\n"
      "  --threads N           RunBatch worker threads (default:\n"
      "                        hardware concurrency)\n"
      "  --max-inflight N      admission control: max in-flight batch\n"
      "                        groups before shedding kOverloaded\n"
      "                        (default 64)\n"
      "  --idle-timeout-ms MS  close idle connections (default 60000)\n"
      "\n"
      "--check probes a running server's kHealth endpoint (bounded\n"
      "deadlines, never hangs on a dead address) and prints a one-screen\n"
      "metrics summary from its kMetrics snapshot; exit 0 iff ready,\n"
      "1 when reachable but draining/poisoned, 2 when unreachable.\n"
      "SIGTERM/SIGINT drain cleanly: in-flight work finishes, new\n"
      "requests are shed with kShuttingDown, then exit 0.\n",
      argv0, argv0);
}

/// `flood_serve --check ADDRESS`: health-probe a running server. Exit 0
/// when ready, 1 when reachable but draining/poisoned, 2 when unreachable.
int CheckHealth(const std::string& address) {
  flood::serve::ClientOptions copts;
  copts.connect_timeout_ms = 2'000;
  copts.send_timeout_ms = 2'000;
  copts.recv_timeout_ms = 2'000;
  copts.retry.max_attempts = 3;
  copts.retry.initial_backoff_ms = 50;
  auto client = flood::serve::Client::Connect(address, copts);
  if (!client.ok()) {
    std::fprintf(stderr, "connect: %s\n",
                 client.status().ToString().c_str());
    return 2;
  }
  auto health = client->Health();
  if (!health.ok()) {
    std::fprintf(stderr, "health: %s\n",
                 health.status().ToString().c_str());
    return 2;
  }
  std::printf(
      "ready=%d draining=%d persist_poisoned=%d queue_depth=%llu "
      "connections=%llu\n",
      health->ready ? 1 : 0, health->draining ? 1 : 0,
      health->persist_poisoned ? 1 : 0,
      static_cast<unsigned long long>(health->queue_depth),
      static_cast<unsigned long long>(health->connections_active));
  auto metrics = client->Metrics();
  if (metrics.ok()) {
    std::fputs(flood::serve::FormatMetricsSummary(*metrics).c_str(), stdout);
  } else {
    std::fprintf(stderr, "metrics: %s\n",
                 metrics.status().ToString().c_str());
  }
  return (health->ready && !health->persist_poisoned) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string uds_path;
  bool listen_tcp = false;
  std::string host = "127.0.0.1";
  long tcp_port = 0;
  std::string snapshot;
  std::string index_name = "flood";
  long rows = 200'000;
  long dims = 4;
  long threads = 0;  // 0 = hardware concurrency.
  long max_inflight = 64;
  long idle_timeout_ms = 60'000;
  std::string metrics_addr;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--check") {
      return CheckHealth(next());
    } else if (arg == "--uds") {
      uds_path = next();
    } else if (arg == "--tcp") {
      listen_tcp = true;
      tcp_port = std::atol(next());
    } else if (arg == "--host") {
      host = next();
    } else if (arg == "--metrics-addr") {
      metrics_addr = next();
    } else if (arg == "--snapshot") {
      snapshot = next();
    } else if (arg == "--index") {
      index_name = next();
    } else if (arg == "--rows") {
      rows = std::atol(next());
    } else if (arg == "--dims") {
      dims = std::atol(next());
    } else if (arg == "--threads") {
      threads = std::atol(next());
    } else if (arg == "--max-inflight") {
      max_inflight = std::atol(next());
    } else if (arg == "--idle-timeout-ms") {
      idle_timeout_ms = std::atol(next());
    } else if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      Usage(argv[0]);
      return 2;
    }
  }
  if (uds_path.empty() && !listen_tcp) {
    Usage(argv[0]);
    return 2;
  }
  if (tcp_port < 0 || tcp_port > 65535) {
    std::fprintf(stderr, "bad --tcp port %ld\n", tcp_port);
    return 2;
  }

  flood::DatabaseOptions options;
  options.index_name = index_name;
  if (threads > 0) {
    options.num_threads = static_cast<size_t>(threads);
  } else {
    options.num_threads = flood::ThreadPool::DefaultConcurrency();
  }

  flood::StatusOr<flood::Database> db = [&]() {
    if (!snapshot.empty()) {
      std::fprintf(stderr, "opening snapshot %s ...\n", snapshot.c_str());
      return flood::Database::Open(snapshot, std::move(options));
    }
    std::fprintf(stderr, "building synthetic table: %ld rows x %ld dims\n",
                 rows, dims);
    const flood::BenchDataset ds = flood::MakeUniformDataset(
        static_cast<size_t>(rows), static_cast<size_t>(dims), 42);
    options.training_workload = flood::MakeWorkload(
        ds, flood::WorkloadKind::kOlapSkewed, 64, 43);
    return flood::Database::Open(ds.table, std::move(options));
  }();
  if (!db.ok()) {
    std::fprintf(stderr, "open: %s\n", db.status().ToString().c_str());
    return 1;
  }

  flood::serve::ServerOptions sopts;
  sopts.uds_path = uds_path;
  sopts.listen_tcp = listen_tcp;
  sopts.tcp_host = host;
  sopts.tcp_port = static_cast<uint16_t>(tcp_port);
  sopts.max_inflight_batches = static_cast<size_t>(max_inflight);
  sopts.idle_timeout_ms = idle_timeout_ms;
  sopts.metrics_addr = metrics_addr;

  flood::StatusOr<std::unique_ptr<flood::serve::Server>> server =
      flood::serve::Server::Create(&*db, std::move(sopts));
  if (!server.ok()) {
    std::fprintf(stderr, "serve: %s\n", server.status().ToString().c_str());
    return 1;
  }
  g_server = server->get();

  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = HandleSignal;
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);

  // Readiness lines on stdout (flushed) so scripts can wait for them.
  if (!uds_path.empty()) {
    std::printf("listening uds %s\n", uds_path.c_str());
  }
  if (listen_tcp) {
    std::printf("listening tcp %s:%u\n", host.c_str(),
                (*server)->tcp_port());
  }
  if (!metrics_addr.empty()) {
    std::printf("metrics http port %u\n", (*server)->metrics_port());
  }
  std::printf("serving %zu rows via '%s' on %zu threads\n", db->num_rows(),
              index_name.c_str(), db->num_threads());
  std::fflush(stdout);

  // Returns OK after a SIGTERM/SIGINT-initiated drain; a typed error if
  // the event loop itself failed (e.g. epoll_wait).
  const flood::Status ran = (*server)->Run();
  if (!ran.ok()) {
    std::fprintf(stderr, "serve loop: %s\n", ran.ToString().c_str());
    g_server = nullptr;
    return 1;
  }

  const flood::serve::ServerCounters c = (*server)->counters();
  std::printf(
      "drained: %llu conns, %llu frames, %llu batches, %llu queries, "
      "%llu shed\n",
      static_cast<unsigned long long>(c.connections_accepted),
      static_cast<unsigned long long>(c.frames_decoded),
      static_cast<unsigned long long>(c.batches_submitted),
      static_cast<unsigned long long>(c.queries_executed),
      static_cast<unsigned long long>(c.requests_shed));
  g_server = nullptr;
  return 0;
}
